/**
 * @file
 * Mat model implementation.
 */

#include "array/mat.hh"

#include <cmath>

#include "circuit/driver.hh"
#include "circuit/gate_area.hh"
#include "circuit/logic_gate.hh"

namespace cactid {

Mat::Mat(const Technology &t, RamCellTech tech, const Partition &part,
         int ports)
    : part_(part),
      subarray_(t,
                applyPorts(t.cell(tech),
                           t.wire(WirePlane::Local).pitch, ports),
                part.rowsPerSubarray, part.colsPerSubarray),
      bitline_(makeBitline(t,
                           applyPorts(t.cell(tech),
                                      t.wire(WirePlane::Local).pitch,
                                      ports),
                           part.rowsPerSubarray))
{
    const CellParams cell = applyPorts(
        t.cell(tech), t.wire(WirePlane::Local).pitch, ports);
    const DeviceKind periph = cell.peripheralDevice;
    const DeviceParams &pd = t.device(periph);
    const int rows = part.rowsPerSubarray;
    const int cols = part.colsPerSubarray;

    // DRAM senses every column of the open page; SRAM muxes blMux
    // columns into one amp before sensing.
    senseAmps_ = isDram(tech) ? cols : cols / part.blMux;
    const SenseAmp sa(t, periph, cell.width * part.blMux);

    // --- Row path: predecode + row decode + wordline.
    const Decoder decoder(t, periph, rows, subarray_.cWordline(),
                          subarray_.rWordline(), cell.height, cell.vpp);
    decodeDelay_ = decoder.delay(Edge{}).delay;

    // --- Sensing.
    senseDelay_ = sa.delay(t, bitline_.senseMargin);

    // --- Column path: pass-gate mux after the sense amps followed by an
    // output driver onto the H-tree stub at the mat edge.
    const double w_pass = 2.0 * t.minWidth();
    const double r_pass = pd.rNchOn() / w_pass;
    const double c_mux_line =
        part.samMux * pd.cJunction * w_pass + 4e-15;
    const DriverChain out_drv = sizeDriverChain(
        t, periph, 40.0 * pd.cGate * t.minWidth(), 0.0, 0.0, Edge{});
    Edge e = stageDelay(Edge{}, r_pass * (c_mux_line + out_drv.inputCap));
    outputDelay_ = e.delay + (out_drv.out.delay);
    // Column-select path.  DRAM pages are wide: the column address is
    // decoded and the selected CSL driven across the whole matrix
    // width, a significant part of the CAS latency.  SRAM column
    // selection is a single gate overlapped with the row path.
    if (isDram(tech)) {
        const WireParams &lwire = t.wire(WirePlane::Local);
        const double csl_len = subarray_.matrixWidth();
        const int n_csl = std::max(4, cols / 16);
        const Decoder col_dec(t, periph, n_csl,
                              lwire.capPerM * csl_len +
                                  16.0 * pd.cGate * w_pass,
                              lwire.resPerM * csl_len, 16.0 * cell.width);
        outputDelay_ += col_dec.delay(Edge{}).delay;
        colDecodeEnergy_ = col_dec.energyPerAccess();
        colDecodeLeakage_ = col_dec.leakage();
    } else if (part.samMux > 1) {
        const LogicGate sel(GateType::Nand2, periph, w_pass);
        outputDelay_ += stageDelay(Edge{}, sel.resistance(t) *
                                   (sel.outputCap(t) + pd.cGate * w_pass))
                            .delay;
    }

    // --- Geometry: decoder strip beside the matrix, SA/mux strip below.
    // Adjacent mats share one row-decode strip (drivers alternate
    // left/right), halving the per-mat strip cost.
    const double decoder_strip_w =
        0.5 * decoder.area() / std::max(subarray_.matrixHeight(), 1e-9);
    width_ = subarray_.matrixWidth() + decoder_strip_w;
    const double sa_strip_h =
        senseAmps_ * sa.area() / std::max(subarray_.matrixWidth(), 1e-9);
    height_ = subarray_.matrixHeight() + subarray_.stripHeight() +
              sa_strip_h;

    // --- Energy.
    const int bits_out = part.bitsPerMatAccess();
    activateEnergy_ = decoder.energyPerAccess();
    if (isDram(tech)) {
        // The boosted wordline is charged from the VPP charge pump,
        // whose conversion efficiency is ~40%: the supply pays ~2.5x
        // the delivered C*VPP^2.
        constexpr double kPumpOverhead = 2.5;
        activateEnergy_ += (kPumpOverhead - 1.0) * subarray_.cWordline() *
                           cell.vpp * cell.vpp;
    }
    if (isDram(tech)) {
        // Whole page: every bitline swings and every amp fires; half of
        // the cells (on average) need their level restored.
        activateEnergy_ += cols * bitline_.readEnergy;
        activateEnergy_ += cols * sa.energy(t);
        activateEnergy_ += 0.5 * cols * bitline_.cellRestoreEnergy;
    } else {
        // All bitlines of the row develop swing; one amp per mux group.
        activateEnergy_ += cols * bitline_.readEnergy;
        activateEnergy_ += senseAmps_ * sa.energy(t);
    }
    readColumnEnergy_ =
        bits_out * (out_drv.energy + c_mux_line * pd.vdd * pd.vdd) +
        colDecodeEnergy_;
    if (isDram(tech)) {
        // Writes drive the local IO lines against the sense amps and
        // flip the selected latches; writeback itself is part of the
        // activate/restore energy above.
        writeExtraEnergy_ =
            bits_out * (sa.energy(t) + 2.0 * out_drv.energy);
    } else {
        writeExtraEnergy_ =
            bits_out * (bitline_.writeEnergy - bitline_.readEnergy);
    }
    // Internal refresh sequencing skips the command/column/IO paths
    // and staggers activation, so it is cheaper than an external
    // ACTIVATE of the same row.
    constexpr double kRefreshEfficiency = 0.6;
    refreshRowEnergy_ = kRefreshEfficiency *
                        (decoder.energyPerAccess() +
                         cols * (bitline_.readEnergy + sa.energy(t)) +
                         0.5 * cols * bitline_.cellRestoreEnergy);

    // Multi-porting replicates the row decoders and the column
    // periphery once per port.
    if (ports > 1) {
        const double rep = double(ports);
        width_ += (rep - 1.0) * decoder_strip_w;
        height_ += (rep - 1.0) * sa_strip_h;
        leakagePortFactor_ = rep;
    }

    // --- Static power.  DRAM sense-amp latches are disconnected from
    // the rails while the bitlines are precharged, so they contribute
    // almost no standby leakage (only the isolation devices).
    const double sa_leak_factor = isDram(tech) ? 0.05 : 1.0;
    // DRAM row paths use negative-wordline biasing with high-Vth
    // drivers (the wordline must stay hard off to meet retention), an
    // order-of-magnitude leakage reduction over plain logic drivers.
    const double row_leak_factor = isDram(tech) ? 0.15 : 1.0;
    leakage_ = leakagePortFactor_ *
               (row_leak_factor * decoder.leakage() +
                sa_leak_factor * senseAmps_ * sa.leakage(t) +
                bits_out * out_drv.leakage + colDecodeLeakage_);
    if (tech == RamCellTech::Sram) {
        cellLeakage_ = double(rows) * cols * cell.iCellLeak300 *
                       t.leakageDerate() * cell.vddCell;
    }
}

double
Mat::accessDelay() const
{
    return decodeDelay_ + bitlineDelay() + senseDelay_ + outputDelay_;
}

double
Mat::cycleTime() const
{
    // Random cycle: the row must be opened, sensed, (restored for DRAM,
    // whose readout is destructive) and the bitlines precharged before
    // the next row can be opened (paper section 2.3.2).
    return decodeDelay_ + bitlineDelay() + senseDelay_ +
           writebackDelay() + prechargeDelay();
}

} // namespace cactid
