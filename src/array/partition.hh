/**
 * @file
 * Array partition parameters and their enumeration.
 *
 * A bank of `size` bits is tiled into identical subarrays of
 * rowsPerSubarray x colsPerSubarray cells.  Column multiplexing happens
 * in two places: `blMux` bitlines share one sense amplifier (before
 * sensing; SRAM only -- DRAM senses every column of the open page), and
 * `samMux` sense-amplifier outputs share one output line (after
 * sensing).  These correspond to CACTI's Ndwl/Ndbl/deg-bitline-muxing/
 * Ndsam degrees of freedom.
 */

#ifndef CACTID_ARRAY_PARTITION_HH
#define CACTID_ARRAY_PARTITION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "tech/cell.hh"

namespace cactid {

/** One point in the array organization space. */
struct Partition {
    int rowsPerSubarray = 0; ///< wordlines per subarray (power of two)
    int colsPerSubarray = 0; ///< cells per wordline (power of two)
    int blMux = 1;           ///< bitlines per sense amp (pre-sensing mux)
    int samMux = 1;          ///< SA outputs per data line (post-sensing)

    /** Bits a single mat contributes to one access. */
    int
    bitsPerMatAccess() const
    {
        return colsPerSubarray / (blMux * samMux);
    }
};

/** Limits for the partition enumeration. */
struct PartitionLimits {
    int minRows = 16;
    int maxRows = 8192;
    int minCols = 32;
    int maxCols = 16384;
    int maxBlMux = 16;
    int maxSamMux = 64;
};

/** Callback receiving each structurally valid partition in turn. */
using PartitionVisitor = std::function<void(const Partition &)>;

/**
 * Visit all structurally valid partitions of a bank in a fixed,
 * deterministic order (rows, then cols, then blMux, then samMux, each
 * ascending).  Candidates stream to @p visit one at a time, so callers
 * can evaluate or prune them without materializing the whole space.
 *
 * @param size_bits   bits stored in the bank
 * @param output_bits bits delivered per access
 * @param tech        cell technology (DRAM forces blMux == 1: the whole
 *                    page is sensed)
 * @param limits      enumeration bounds
 * @param visit       called once per valid partition
 */
void forEachPartition(double size_bits, int output_bits,
                      RamCellTech tech, const PartitionLimits &limits,
                      const PartitionVisitor &visit);

/** Convenience wrapper: collect the forEachPartition stream. */
std::vector<Partition> enumeratePartitions(double size_bits,
                                           int output_bits,
                                           RamCellTech tech,
                                           const PartitionLimits &limits);

} // namespace cactid

#endif // CACTID_ARRAY_PARTITION_HH
