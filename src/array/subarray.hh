/**
 * @file
 * Subarray geometry: the cell matrix plus its immediately abutted
 * strips (sense amplifiers, precharge, column mux).
 */

#ifndef CACTID_ARRAY_SUBARRAY_HH
#define CACTID_ARRAY_SUBARRAY_HH

#include "tech/technology.hh"

namespace cactid {

/** Geometry of one subarray (cell matrix + abutted strips). */
class Subarray
{
  public:
    /**
     * @param t    technology
     * @param tech cell technology
     * @param rows wordlines
     * @param cols cells per wordline
     */
    Subarray(const Technology &t, RamCellTech tech, int rows, int cols);

    /** Construct with an explicit (e.g. port-adjusted) cell. */
    Subarray(const Technology &t, const CellParams &cell, int rows,
             int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Width of the cell matrix incl. strap overhead (m). */
    double matrixWidth() const { return matrixWidth_; }

    /** Height of the cell matrix incl. strap overhead (m). */
    double matrixHeight() const { return matrixHeight_; }

    /** Height of the sense-amp / precharge / mux strip below (m). */
    double stripHeight() const { return stripHeight_; }

    /** Total wordline capacitance (cells + wire) (F). */
    double cWordline() const { return cWordline_; }

    /** Total wordline resistance (m). */
    double rWordline() const { return rWordline_; }

    /** Area occupied purely by storage cells (m^2). */
    double cellArea() const { return cellArea_; }

  private:
    int rows_;
    int cols_;
    double matrixWidth_ = 0.0;
    double matrixHeight_ = 0.0;
    double stripHeight_ = 0.0;
    double cWordline_ = 0.0;
    double rWordline_ = 0.0;
    double cellArea_ = 0.0;
};

} // namespace cactid

#endif // CACTID_ARRAY_SUBARRAY_HH
