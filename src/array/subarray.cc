/**
 * @file
 * Subarray geometry implementation.
 */

#include "array/subarray.hh"

namespace cactid {

namespace {

/** Strap/dummy-row overhead of the cell matrix. */
constexpr double kMatrixOverhead = 1.05;

/** Sense/precharge/mux strip height in feature sizes. */
constexpr double kStripHeightInF = 40.0;

} // namespace

Subarray::Subarray(const Technology &t, RamCellTech tech, int rows,
                   int cols)
    : Subarray(t, t.cell(tech), rows, cols)
{
}

Subarray::Subarray(const Technology &t, const CellParams &cell, int rows,
                   int cols)
    : rows_(rows), cols_(cols)
{
    const RamCellTech tech = cell.tech;
    matrixWidth_ = cols * cell.width * kMatrixOverhead;
    matrixHeight_ = rows * cell.height * kMatrixOverhead;
    stripHeight_ = kStripHeightInF * t.feature();
    cellArea_ = double(rows) * cols * cell.areaF2 * t.feature() *
                t.feature();

    const WireParams &wire = t.wire(WirePlane::Local);
    const DeviceParams &acc = t.device(cell.accessDevice);
    // The wordline sees every access gate on the row plus the strapped
    // wire.  DRAM wordlines are strapped poly: model extra resistance
    // via a 4x surcharge on the local-plane wire resistance.
    const double wl_len = cols * cell.width;
    const double r_factor = isDram(tech) ? 4.0 : 1.0;
    const int gates_per_cell = tech == RamCellTech::Sram ? 2 : 1;
    cWordline_ = cols * gates_per_cell * acc.cGate * cell.accessWidth +
                 wire.capPerM * wl_len;
    rWordline_ = r_factor * wire.resPerM * wl_len;
}

} // namespace cactid
