/**
 * @file
 * Partition enumeration.
 */

#include "array/partition.hh"

#include <cmath>

namespace cactid {

void
forEachPartition(double size_bits, int output_bits, RamCellTech tech,
                 const PartitionLimits &limits,
                 const PartitionVisitor &visit)
{
    for (int rows = limits.minRows; rows <= limits.maxRows; rows *= 2) {
        for (int cols = limits.minCols; cols <= limits.maxCols;
             cols *= 2) {
            const double subarray_bits = double(rows) * cols;
            if (subarray_bits > size_bits)
                continue;
            const double n_mats = size_bits / subarray_bits;
            // Require an integral tiling (banks may be 3 * 2^k bits,
            // e.g. a 3MB bank of a 24MB 8-bank cache).
            const double rounded = std::round(n_mats);
            if (std::abs(n_mats - rounded) > 1e-9)
                continue;
            const auto n = static_cast<long>(rounded);
            if (n > 1 << 14)
                continue; // absurd tilings

            const int max_bl = isDram(tech) ? 1 : limits.maxBlMux;
            for (int bl = 1; bl <= max_bl; bl *= 2) {
                for (int sam = 1; sam <= limits.maxSamMux; sam *= 2) {
                    Partition p{rows, cols, bl, sam};
                    const int per_mat = p.bitsPerMatAccess();
                    if (per_mat < 1)
                        continue;
                    // Enough mats must exist to source the output width.
                    const int active =
                        (output_bits + per_mat - 1) / per_mat;
                    if (active > n)
                        continue;
                    // Do not fetch more than 2x the needed bits from a
                    // single mat (the excess would be discarded).
                    if (per_mat > 2 * output_bits)
                        continue;
                    visit(p);
                }
            }
        }
    }
}

std::vector<Partition>
enumeratePartitions(double size_bits, int output_bits, RamCellTech tech,
                    const PartitionLimits &limits)
{
    std::vector<Partition> out;
    forEachPartition(size_bits, output_bits, tech, limits,
                     [&out](const Partition &p) { out.push_back(p); });
    return out;
}

} // namespace cactid
