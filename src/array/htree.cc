/**
 * @file
 * H-tree implementation.
 *
 * The representative route spans half the bank width plus half the bank
 * height (port at the edge center, target mat in the middle of its
 * quadrant).  The address network is a broadcast tree whose total wire
 * length is approximately twice the bank half-perimeter per level-one
 * branch; we charge a 2x broadcast surcharge on the representative
 * route, matching CACTI's tree accounting to first order.
 */

#include "array/htree.hh"

namespace cactid {

namespace {

constexpr double kBroadcastSurcharge = 2.0;

} // namespace

HTree::HTree(const Technology &t, DeviceKind dev, double bank_w,
             double bank_h, int addr_bits, int data_bits, double derate)
{
    const WireParams &wire = t.wire(WirePlane::SemiGlobal);
    const RepeatedWire rep(wire, t.device(dev), derate);

    routeLength_ = (bank_w + bank_h) / 2.0;
    addrDelay_ = rep.delayPerM() * routeLength_;
    dataDelay_ = rep.delayPerM() * routeLength_;

    addrEnergy_ = addr_bits * rep.energyPerM() * routeLength_ *
                  kBroadcastSurcharge * 0.5; // ~half the bits toggle
    dataEnergyPerBit_ = rep.energyPerM() * routeLength_ * 0.5;

    const double total_wire =
        addr_bits * routeLength_ * kBroadcastSurcharge +
        data_bits * routeLength_;
    leakage_ = rep.leakagePerM() * total_wire;
}

} // namespace cactid
