/**
 * @file
 * Bank model: tiles mats into a grid, adds the H-tree networks, and
 * rolls everything up into the area / timing / energy metrics that the
 * optimizer ranks.  Supports both the SRAM-like interface (access time,
 * random cycle time, multisubbank interleave cycle time) and the main
 * memory interface (tRCD, CAS latency, tRP, tRAS, tRC, tRRD and the
 * ACTIVATE / READ / WRITE command energies) of paper sections 2.3.4-2.3.5.
 */

#ifndef CACTID_ARRAY_BANK_HH
#define CACTID_ARRAY_BANK_HH

#include "array/mat.hh"
#include "array/partition.hh"
#include "tech/technology.hh"

namespace cactid {

/** Specification of one bank to be built. */
struct BankSpec {
    double sizeBits = 0.0;  ///< storage bits in the bank
    int outputBits = 0;     ///< bits delivered per access (or prefetch
                            ///< width for main-memory style)
    RamCellTech tech = RamCellTech::Sram;
    double repeaterDerate = 1.0; ///< max_repeater_delay constraint
    bool sleepTransistors = false; ///< halve leakage of inactive mats
    bool mainMemoryStyle = false;  ///< DDR-style operation and timing
    int pageBits = 0;       ///< page size in bits (main-memory style)
    double ioDelay = 0.0;   ///< fixed interface delay added to CAS (s)
    double ioEnergyPerBit = 0.0; ///< off-chip driver energy (J/bit)
    int maxPipelineStages = 6;   ///< pipeline depth limit (paper 4.1)
    int ports = 1;               ///< total ports (SRAM only)
};

/** Everything the optimizer needs to know about one built bank. */
struct BankMetrics {
    Partition part;
    int nMats = 0;
    int gridX = 0;
    int gridY = 0;
    int nActiveMats = 0;

    double width = 0.0;          ///< m
    double height = 0.0;         ///< m
    double area = 0.0;           ///< m^2
    double areaEfficiency = 0.0; ///< cell area / total area

    double accessTime = 0.0;      ///< s
    double randomCycle = 0.0;     ///< s
    double interleaveCycle = 0.0; ///< multisubbank interleave cycle (s)

    // Main-memory style timing interface (zero unless requested).
    double tRcd = 0.0;
    double tCas = 0.0;
    double tRp = 0.0;
    double tRas = 0.0;
    double tRc = 0.0;
    double tRrd = 0.0;

    // SRAM-like interface energies (per full access).
    double readEnergy = 0.0;  ///< J
    double writeEnergy = 0.0; ///< J

    // Main-memory style command energies.
    double activateEnergy = 0.0; ///< incl. precharge (paper Table 2)
    double readBurstEnergy = 0.0;
    double writeBurstEnergy = 0.0;

    double leakage = 0.0;      ///< W
    double refreshPower = 0.0; ///< W

    bool feasible = false;
};

/** Build and evaluate one bank for one candidate partition. */
BankMetrics buildBank(const Technology &t, const BankSpec &spec,
                      const Partition &part);

} // namespace cactid

#endif // CACTID_ARRAY_BANK_HH
