/**
 * @file
 * Crossbar model implementation.
 */

#include "core/crossbar.hh"

#include <cmath>

#include "circuit/delay.hh"
#include "circuit/logic_gate.hh"

namespace cactid {

Crossbar::Crossbar(const Technology &t, int n_ports, int bits_per_port,
                   double route_length)
{
    const WireParams &wire = t.wire(WirePlane::Global);
    const DeviceKind dev = DeviceKind::HpLongChannel;
    const RepeatedWire rep(wire, t.device(dev), 1.0);

    // Matrix of n*w horizontal and n*w vertical tracks.
    const double side = n_ports * bits_per_port * wire.pitch;
    area_ = side * side;
    if (route_length <= 0.0)
        route_length = side;

    // Arbitration: log2(n) gate stages of NAND2-class logic.
    const int arb_stages =
        std::max(1, static_cast<int>(std::ceil(std::log2(n_ports)))) + 2;
    const LogicGate arb(GateType::Nand2, dev, 4.0 * t.minWidth());
    Edge e{};
    for (int i = 0; i < arb_stages; ++i) {
        e = stageDelay(e, arb.resistance(t) *
                              (arb.outputCap(t) + arb.inputCap(t)));
    }

    delay_ = e.delay + rep.delayPerM() * route_length;
    energy_ = bits_per_port *
                  (rep.energyPerM() * route_length * 0.5) +
              arb_stages * arb.switchEnergy(t, arb.inputCap(t));
    leakage_ = rep.leakagePerM() * route_length *
                   (2.0 * n_ports * bits_per_port) +
               n_ports * arb_stages * arb.leakage(t);
}

} // namespace cactid
