/**
 * @file
 * CACTI-D entry point implementation.
 */

#include "core/cacti.hh"

namespace cactid {

SolveResult
solve(const Technology &t, const MemoryConfig &cfg)
{
    return optimize(cfg, enumerateSolutions(t, cfg));
}

SolveResult
solve(const MemoryConfig &cfg)
{
    const Technology t(cfg.featureNm, cfg.temperatureK);
    return solve(t, cfg);
}

} // namespace cactid
