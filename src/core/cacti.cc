/**
 * @file
 * CACTI-D entry point implementation: thin wrappers over SolverEngine.
 */

#include "core/cacti.hh"

namespace cactid {

SolveResult
solve(const Technology &t, const MemoryConfig &cfg,
      const SolverOptions &opts, EngineStats *stats)
{
    return SolverEngine(opts).run(t, cfg, stats);
}

SolveResult
solve(const MemoryConfig &cfg, const SolverOptions &opts,
      EngineStats *stats)
{
    return SolverEngine(opts).run(cfg, stats);
}

SolveResult
solve(const Technology &t, const MemoryConfig &cfg)
{
    return solve(t, cfg, SolverOptions{});
}

SolveResult
solve(const MemoryConfig &cfg)
{
    return solve(cfg, SolverOptions{});
}

} // namespace cactid
