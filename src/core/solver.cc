/**
 * @file
 * Solution-space enumeration implementation.
 */

#include "core/solver.hh"

#include <algorithm>
#include <optional>

#include "core/cache_model.hh"
#include "core/dram_chip.hh"

namespace cactid {

std::vector<Solution>
enumerateSolutions(const Technology &t, const MemoryConfig &cfg)
{
    cfg.validate();

    BankSpec spec;
    spec.sizeBits = cfg.bankBits();
    spec.outputBits = cfg.dataOutputBits();
    spec.tech = cfg.dataCellTech;
    spec.repeaterDerate = cfg.repeaterDerate;
    spec.sleepTransistors = cfg.sleepTransistors;
    spec.ports = cfg.ports;
    if (cfg.type == MemoryType::MainMemoryChip) {
        spec.mainMemoryStyle = true;
        // Commodity DRAM processes route with few, weak repeaters;
        // derate the global networks accordingly.
        spec.repeaterDerate = std::max(cfg.repeaterDerate, 2.5);
        spec.pageBits = cfg.pageBytes * 8;
        spec.ioDelay = cfg.ioDelay;
        spec.ioEnergyPerBit = cfg.ioEnergyPerBit;
    }

    std::optional<TagPath> tag;
    if (cfg.type == MemoryType::Cache)
        tag = solveTagPath(t, cfg);

    const PartitionLimits limits;
    const auto partitions = enumeratePartitions(
        spec.sizeBits, spec.outputBits, spec.tech, limits);

    std::vector<Solution> out;
    out.reserve(partitions.size());
    for (const Partition &p : partitions) {
        const BankMetrics bank = buildBank(t, spec, p);
        if (!bank.feasible)
            continue;
        Solution s = combineSolution(t, cfg, bank, tag);
        if (cfg.type == MemoryType::MainMemoryChip)
            addChipLevel(t, cfg, s);
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace cactid
