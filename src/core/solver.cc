/**
 * @file
 * Candidate evaluation implementation.
 */

#include "core/solver.hh"

#include <algorithm>

#include "core/dram_chip.hh"

namespace cactid {

BankSpec
makeBankSpec(const MemoryConfig &cfg)
{
    BankSpec spec;
    spec.sizeBits = cfg.bankBits();
    spec.outputBits = cfg.dataOutputBits();
    spec.tech = cfg.dataCellTech;
    spec.repeaterDerate = cfg.repeaterDerate;
    spec.sleepTransistors = cfg.sleepTransistors;
    spec.ports = cfg.ports;
    if (cfg.type == MemoryType::MainMemoryChip) {
        spec.mainMemoryStyle = true;
        // Commodity DRAM processes route with few, weak repeaters;
        // derate the global networks accordingly.
        spec.repeaterDerate = std::max(cfg.repeaterDerate, 2.5);
        spec.pageBits = cfg.pageBytes * 8;
        spec.ioDelay = cfg.ioDelay;
        spec.ioEnergyPerBit = cfg.ioEnergyPerBit;
    }
    return spec;
}

CandidateEvaluator::CandidateEvaluator(const Technology &t,
                                       const MemoryConfig &cfg)
    : t_(t), cfg_(cfg)
{
    cfg.validate();
    spec_ = makeBankSpec(cfg);
    if (cfg.type == MemoryType::Cache)
        tag_ = solveTagPath(t, cfg);
}

std::optional<Solution>
CandidateEvaluator::operator()(const Partition &p) const
{
    const BankMetrics bank = buildBank(t_, spec_, p);
    if (!bank.feasible)
        return std::nullopt;
    Solution s = combineSolution(t_, cfg_, bank, tag_);
    if (cfg_.type == MemoryType::MainMemoryChip)
        addChipLevel(t_, cfg_, s);
    return s;
}

std::vector<Solution>
enumerateSolutions(const Technology &t, const MemoryConfig &cfg)
{
    const CandidateEvaluator eval(t, cfg);
    std::vector<Solution> out;
    forEachPartition(eval.spec().sizeBits, eval.spec().outputBits,
                     eval.spec().tech, PartitionLimits{},
                     [&](const Partition &p) {
                         if (auto s = eval(p))
                             out.push_back(std::move(*s));
                     });
    return out;
}

} // namespace cactid
