/**
 * @file
 * Cache composition: tag array sizing, tag+data path combination under
 * the three access modes, and the whole-structure metric roll-up used
 * for plain RAMs and main-memory chips as well.
 */

#ifndef CACTID_CORE_CACHE_MODEL_HH
#define CACTID_CORE_CACHE_MODEL_HH

#include <optional>

#include "core/config.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

/** Solved tag array plus its comparator path. */
struct TagPath {
    BankMetrics bank;
    double comparatorDelay = 0.0;
    double comparatorEnergy = 0.0;
    double comparatorLeakage = 0.0;
    int tagBits = 0;

    /** Tag-available-to-way-select delay (array + comparator). */
    double
    matchDelay() const
    {
        return bank.accessTime + comparatorDelay;
    }
};

/** Tag bits per entry for @p cfg (address minus index/offset + status). */
int tagBitsPerEntry(const MemoryConfig &cfg);

/**
 * Solve the tag array of @p cfg: enumerates tag organizations and picks
 * the fastest one (tags are latency critical in every access mode).
 */
TagPath solveTagPath(const Technology &t, const MemoryConfig &cfg);

/**
 * Roll one data-bank organization (plus optional tag path) up into a
 * complete Solution for @p cfg.
 */
Solution combineSolution(const Technology &t, const MemoryConfig &cfg,
                         const BankMetrics &data,
                         const std::optional<TagPath> &tag);

} // namespace cactid

#endif // CACTID_CORE_CACHE_MODEL_HH
