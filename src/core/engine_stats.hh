/**
 * @file
 * Instrumentation counters collected by the SolverEngine while it
 * enumerates, evaluates and filters the organization space.  Kept in
 * its own header so result.hh can embed the stats in a SolveResult
 * without depending on the engine itself.
 */

#ifndef CACTID_CORE_ENGINE_STATS_HH
#define CACTID_CORE_ENGINE_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace cactid {

namespace obs {
class Registry;
}

/**
 * What happened during one solve.  The counters obey the identity
 *
 *   partitionsEnumerated == partitionsInfeasible + solutionsBuilt
 *   solutionsBuilt == areaPruned + timePruned + |filtered|
 *
 * so every enumerated candidate is accounted for exactly once.
 */
struct EngineStats {
    // --- Enumeration / evaluation counters.
    std::uint64_t partitionsEnumerated = 0; ///< candidates visited
    std::uint64_t partitionsInfeasible = 0; ///< rejected by buildBank
    std::uint64_t solutionsBuilt = 0;       ///< complete solutions made

    // --- Constraint-pass counters.
    std::uint64_t areaPruned = 0; ///< dropped by the max-area criterion
                                  ///< (streaming prune + final pass)
    std::uint64_t timePruned = 0; ///< dropped by the max-acctime pass

    /** High-water mark of live retained solutions during streaming. */
    std::size_t peakLiveSolutions = 0;

    /** Worker threads actually used for candidate evaluation. */
    int jobsUsed = 0;

    // --- Per-stage wall time (seconds).
    double setupSeconds = 0.0;    ///< validate + tag path + enumeration
    double evaluateSeconds = 0.0; ///< buildBank + combine + chip level
    double filterSeconds = 0.0;   ///< constraint passes + objective
    double totalSeconds = 0.0;    ///< whole solve

    /** Multi-line human-readable report (for cactid --stats). */
    std::string report() const;
};

/**
 * Publish the stats under the registry's solver.* namespace (counters
 * for the pipeline identities, gauges for the per-stage wall times).
 */
void registerEngineStats(obs::Registry &r, const EngineStats &s);

} // namespace cactid

#endif // CACTID_CORE_ENGINE_STATS_HH
