/**
 * @file
 * Canonical config fingerprint implementation.
 */

#include "core/fingerprint.hh"

#include "obs/numfmt.hh"
#include "util/hash.hh"

namespace cactid {

namespace {

const char *
typeName(MemoryType t)
{
    switch (t) {
    case MemoryType::PlainRam:
        return "ram";
    case MemoryType::Cache:
        return "cache";
    case MemoryType::MainMemoryChip:
        return "main_memory";
    }
    return "?";
}

const char *
accessModeName(AccessMode m)
{
    switch (m) {
    case AccessMode::Normal:
        return "normal";
    case AccessMode::Sequential:
        return "sequential";
    case AccessMode::Fast:
        return "fast";
    }
    return "?";
}

const char *
techName(RamCellTech t)
{
    switch (t) {
    case RamCellTech::Sram:
        return "sram";
    case RamCellTech::LpDram:
        return "lp-dram";
    case RamCellTech::CommDram:
        return "comm-dram";
    }
    return "?";
}

std::string
renderKey(const MemoryConfig &cfg, const OptimizationWeights &w)
{
    using obs::fmtDouble;
    std::string s = "cactid-config-v1";
    s.reserve(512);
    auto num = [&](const char *k, double v) {
        s += '|';
        s += k;
        s += '=';
        s += fmtDouble(v);
    };
    auto integer = [&](const char *k, long long v) {
        s += '|';
        s += k;
        s += '=';
        s += std::to_string(v);
    };
    auto word = [&](const char *k, const char *v) {
        s += '|';
        s += k;
        s += '=';
        s += v;
    };
    // What to build.
    num("size", cfg.capacityBytes);
    integer("block", cfg.blockBytes);
    integer("assoc", cfg.associativity);
    integer("banks", cfg.nBanks);
    word("type", typeName(cfg.type));
    word("access_mode", accessModeName(cfg.accessMode));
    integer("address_bits", cfg.physicalAddressBits);
    integer("ports", cfg.ports);
    // Technology.
    integer("ecc", cfg.includeEcc ? 1 : 0);
    num("feature_nm", cfg.featureNm);
    num("temperature_k", cfg.temperatureK);
    word("technology", techName(cfg.dataCellTech));
    word("tag_technology", techName(cfg.tagCellTech));
    integer("sleep_tx", cfg.sleepTransistors ? 1 : 0);
    // Optimization controls.
    num("max_area", cfg.maxAreaConstraint);
    num("max_acctime", cfg.maxAccTimeConstraint);
    num("repeater_derate", cfg.repeaterDerate);
    num("weight_dynamic", w.dynamicEnergy);
    num("weight_leakage", w.leakage);
    num("weight_cycle", w.randomCycle);
    num("weight_interleave", w.interleaveCycle);
    num("weight_acctime", w.accessTime);
    num("weight_area", w.area);
    // Main-memory chip organization.
    integer("io_bits", cfg.ioBits);
    integer("burst_length", cfg.burstLength);
    integer("prefetch_width", cfg.prefetchWidth);
    integer("page_bytes", cfg.pageBytes);
    num("io_delay", cfg.ioDelay);
    num("io_energy_per_bit", cfg.ioEnergyPerBit);
    return s;
}

} // namespace

std::string
ConfigFingerprint::hex() const
{
    return util::hex16(hi) + util::hex16(lo);
}

ConfigFingerprint
keyFingerprint(const std::string &key)
{
    ConfigFingerprint fp;
    fp.lo = util::fnv1a64(key);
    // An independent second lane: different seed (FNV offset basis
    // xor a domain tag) so the two 64-bit hashes do not co-collide.
    fp.hi = util::fnv1a64(key, 0xcbf29ce484222325ULL ^
                                   0x9e3779b97f4a7c15ULL);
    return fp;
}

std::string
canonicalKey(const MemoryConfig &cfg)
{
    return renderKey(cfg, cfg.weights);
}

ConfigFingerprint
configFingerprint(const MemoryConfig &cfg)
{
    return keyFingerprint(canonicalKey(cfg));
}

std::string
canonicalShareKey(const MemoryConfig &cfg)
{
    return renderKey(cfg, OptimizationWeights{0, 0, 0, 0, 0, 0});
}

ConfigFingerprint
shareFingerprint(const MemoryConfig &cfg)
{
    return keyFingerprint(canonicalShareKey(cfg));
}

} // namespace cactid
