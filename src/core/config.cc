/**
 * @file
 * MemoryConfig helpers.
 */

#include "core/config.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cactid {

int
MemoryConfig::dataOutputBits() const
{
    const int block_bits = blockBytes * 8;
    switch (type) {
      case MemoryType::PlainRam:
        return block_bits;
      case MemoryType::Cache:
        // Normal access fetches every way to the edge and late-selects
        // there; Fast applies the way select at the sense-amp mux so
        // only the chosen way is driven out; Sequential touches only
        // the matching way after the tag lookup.
        return accessMode == AccessMode::Normal
                   ? block_bits * associativity
                   : block_bits;
      case MemoryType::MainMemoryChip:
        return ioBits * prefetchWidth;
    }
    throw std::logic_error("unknown MemoryType");
}

double
MemoryConfig::bankBits() const
{
    return capacityBytes * 8.0 / nBanks;
}

void
MemoryConfig::validate() const
{
    auto require = [](bool ok, const char *msg) {
        if (!ok)
            throw std::invalid_argument(msg);
    };
    require(capacityBytes > 0, "capacity must be positive");
    require(blockBytes > 0 && (blockBytes & (blockBytes - 1)) == 0,
            "block size must be a power of two");
    require(nBanks > 0 && (nBanks & (nBanks - 1)) == 0,
            "bank count must be a power of two");
    require(associativity >= 1, "associativity must be >= 1");
    require(ports >= 1, "ports must be >= 1");
    require(ports == 1 || dataCellTech == RamCellTech::Sram,
            "only SRAM memories can be multi-ported");
    require(maxAreaConstraint >= 0.0, "max area constraint negative");
    require(maxAccTimeConstraint >= 0.0, "max acctime constraint negative");
    require(repeaterDerate >= 1.0, "repeater derate must be >= 1");
    if (type == MemoryType::MainMemoryChip) {
        require(isDram(dataCellTech),
                "main memory chips must use a DRAM cell technology");
        require(pageBytes * 8 >= ioBits * prefetchWidth,
                "page smaller than the internal prefetch");
        require(burstLength > 0 && prefetchWidth > 0 && ioBits > 0,
                "bad interface widths");
    }
    const double bank_bits = bankBits();
    require(bank_bits >= 8.0 * blockBytes,
            "bank smaller than one block");
    require(std::abs(bank_bits - std::round(bank_bits)) < 1e-9,
            "bank capacity must be an integral number of bits");
}

std::string
MemoryConfig::summary() const
{
    std::ostringstream os;
    const double mb = capacityBytes / (1024.0 * 1024.0);
    os << mb << "MB " << toString(dataCellTech) << " ";
    switch (type) {
      case MemoryType::PlainRam: os << "RAM"; break;
      case MemoryType::Cache:
        os << associativity << "-way cache";
        break;
      case MemoryType::MainMemoryChip: os << "DRAM chip"; break;
    }
    os << ", " << nBanks << " banks @ " << featureNm << "nm";
    return os.str();
}

} // namespace cactid
