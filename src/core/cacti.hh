/**
 * @file
 * CACTI-D public entry point.
 *
 * Typical use:
 * @code
 *   cactid::MemoryConfig cfg;
 *   cfg.capacityBytes = 24 << 20;
 *   cfg.type = cactid::MemoryType::Cache;
 *   cfg.associativity = 12;
 *   cfg.nBanks = 8;
 *   cfg.dataCellTech = cactid::RamCellTech::Sram;
 *   auto result = cactid::solve(cfg);
 *   std::cout << result.best.report();
 * @endcode
 */

#ifndef CACTID_CORE_CACTI_HH
#define CACTID_CORE_CACTI_HH

#include "core/config.hh"
#include "core/crossbar.hh"
#include "core/engine.hh"
#include "core/optimizer.hh"
#include "core/result.hh"
#include "core/solver.hh"
#include "tech/technology.hh"

namespace cactid {

/**
 * Solve @p cfg: enumerate the organization space, apply the section-2.4
 * optimization, and return the chosen solution plus the explored space.
 * All overloads run on the SolverEngine; the plain forms use the
 * default options (jobs = hardware concurrency, collect everything).
 */
SolveResult solve(const MemoryConfig &cfg);

/** Solve against an explicitly constructed technology. */
SolveResult solve(const Technology &t, const MemoryConfig &cfg);

/** Solve with explicit engine options (thread count, streaming). */
SolveResult solve(const MemoryConfig &cfg, const SolverOptions &opts,
                  EngineStats *stats = nullptr);

/** Solve with explicit technology and engine options. */
SolveResult solve(const Technology &t, const MemoryConfig &cfg,
                  const SolverOptions &opts,
                  EngineStats *stats = nullptr);

} // namespace cactid

#endif // CACTID_CORE_CACTI_HH
