/**
 * @file
 * Solution optimizer (paper section 2.4), decomposed into composable
 * passes: a max-area constraint filter, a max-access-time constraint
 * filter, and a normalized weighted objective over dynamic energy,
 * static power (leakage + refresh), random cycle time and multisubbank
 * interleave cycle time.  optimize() composes the passes; each pass is
 * also exposed on its own so callers (the SolverEngine, tests, custom
 * sweeps) can run and instrument them individually.
 */

#ifndef CACTID_CORE_OPTIMIZER_HH
#define CACTID_CORE_OPTIMIZER_HH

#include <cstddef>
#include <vector>

#include "core/config.hh"
#include "core/result.hh"

namespace cactid {

/**
 * Drop every solution whose totalArea exceeds
 * best-area * (1 + slack); a solution exactly at the boundary is kept
 * (<= semantics).  In-place and order-preserving.
 *
 * @return the number of solutions removed.
 */
std::size_t filterByArea(std::vector<Solution> &sols, double slack);

/**
 * Drop every solution whose accessTime exceeds
 * best-access-time * (1 + slack); boundary solutions are kept.
 * In-place and order-preserving.
 *
 * @return the number of solutions removed.
 */
std::size_t filterByAccessTime(std::vector<Solution> &sols,
                               double slack);

/**
 * Normalization denominators of the weighted objective: the best
 * (minimum) value of each metric among the constraint survivors.
 * Static power is normalized as leakage + refreshPower so DRAM
 * solutions with refresh are weighted on the same scale as SRAM.
 */
struct ObjectiveScales {
    double readEnergy = 0.0;
    double staticPower = 0.0; ///< min over (leakage + refreshPower)
    double randomCycle = 0.0;
    double interleaveCycle = 0.0;
    double accessTime = 0.0;
    double totalArea = 0.0;
};

/** Compute the normalization scales over @p sols. */
ObjectiveScales objectiveScales(const std::vector<Solution> &sols);

/** One solution's weighted objective (lower is better). */
double objectiveValue(const Solution &s, const OptimizationWeights &w,
                      const ObjectiveScales &scales);

/**
 * Assign Solution::objective to every solution and return the best
 * one (first wins ties, matching enumeration order).
 *
 * @throws std::runtime_error when @p sols is empty.
 */
Solution selectBest(std::vector<Solution> &sols,
                    const OptimizationWeights &w);

/**
 * Apply the section-2.4 optimization process to the enumerated
 * solutions: area filter, then access-time filter, then the weighted
 * objective.  Fills the pruned-count fields of the result's stats.
 *
 * @throws std::runtime_error when @p all is empty.
 */
SolveResult optimize(const MemoryConfig &cfg, std::vector<Solution> all);

} // namespace cactid

#endif // CACTID_CORE_OPTIMIZER_HH
