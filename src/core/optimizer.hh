/**
 * @file
 * Solution optimizer (paper section 2.4): max-area constraint filter,
 * then max-access-time constraint filter, then a normalized weighted
 * objective over dynamic energy, leakage, random cycle time and
 * multisubbank interleave cycle time.
 */

#ifndef CACTID_CORE_OPTIMIZER_HH
#define CACTID_CORE_OPTIMIZER_HH

#include <vector>

#include "core/config.hh"
#include "core/result.hh"

namespace cactid {

/**
 * Apply the section-2.4 optimization process to the enumerated
 * solutions.
 *
 * @throws std::runtime_error when @p all is empty.
 */
SolveResult optimize(const MemoryConfig &cfg, std::vector<Solution> all);

} // namespace cactid

#endif // CACTID_CORE_OPTIMIZER_HH
