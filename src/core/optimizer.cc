/**
 * @file
 * Optimizer implementation.
 */

#include "core/optimizer.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cactid {

namespace {

double
minOf(const std::vector<Solution> &v, double Solution::*field)
{
    double m = std::numeric_limits<double>::infinity();
    for (const Solution &s : v)
        m = std::min(m, s.*field);
    return m;
}

/** One normalized objective term; zero-valued metrics contribute 0. */
double
term(double weight, double value, double best)
{
    if (weight <= 0.0 || best <= 0.0)
        return 0.0;
    return weight * value / best;
}

} // namespace

SolveResult
optimize(const MemoryConfig &cfg, std::vector<Solution> all)
{
    if (all.empty())
        throw std::runtime_error(
            "no feasible solutions for " + cfg.summary());

    SolveResult res;
    res.all = all;

    // --- Step 1: max area constraint.
    const double best_area = minOf(all, &Solution::totalArea);
    std::vector<Solution> pass;
    for (const Solution &s : all) {
        if (s.totalArea <= best_area * (1.0 + cfg.maxAreaConstraint))
            pass.push_back(s);
    }

    // --- Step 2: max access time constraint within the area survivors.
    const double best_time = minOf(pass, &Solution::accessTime);
    std::vector<Solution> pass2;
    for (const Solution &s : pass) {
        if (s.accessTime <= best_time * (1.0 + cfg.maxAccTimeConstraint))
            pass2.push_back(s);
    }

    // --- Step 3: normalized weighted objective.
    const double e0 = minOf(pass2, &Solution::readEnergy);
    const double l0 = minOf(pass2, &Solution::leakage);
    const double rc0 = minOf(pass2, &Solution::randomCycle);
    const double ic0 = minOf(pass2, &Solution::interleaveCycle);
    const double at0 = minOf(pass2, &Solution::accessTime);
    const double ar0 = minOf(pass2, &Solution::totalArea);

    const OptimizationWeights &w = cfg.weights;
    double best_obj = std::numeric_limits<double>::infinity();
    for (Solution &s : pass2) {
        s.objective = term(w.dynamicEnergy, s.readEnergy, e0) +
                      term(w.leakage, s.leakage + s.refreshPower,
                           l0 + 0.0) +
                      term(w.randomCycle, s.randomCycle, rc0) +
                      term(w.interleaveCycle, s.interleaveCycle, ic0) +
                      term(w.accessTime, s.accessTime, at0) +
                      term(w.area, s.totalArea, ar0);
        if (s.objective < best_obj) {
            best_obj = s.objective;
            res.best = s;
        }
    }
    res.filtered = std::move(pass2);
    return res;
}

} // namespace cactid
