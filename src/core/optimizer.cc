/**
 * @file
 * Optimizer implementation.
 */

#include "core/optimizer.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.hh"

namespace cactid {

namespace {

template <typename Metric>
double
minOf(const std::vector<Solution> &v, Metric metric)
{
    double m = std::numeric_limits<double>::infinity();
    for (const Solution &s : v)
        m = std::min(m, metric(s));
    return m;
}

/** One normalized objective term; zero-valued metrics contribute 0. */
double
term(double weight, double value, double best)
{
    if (weight <= 0.0 || best <= 0.0)
        return 0.0;
    return weight * value / best;
}

} // namespace

std::size_t
filterByArea(std::vector<Solution> &sols, double slack)
{
    OBS_PROFILE_SCOPE("optimizer.filterByArea");
    if (sols.empty())
        return 0;
    const double best =
        minOf(sols, [](const Solution &s) { return s.totalArea; });
    const double limit = best * (1.0 + slack);
    return std::erase_if(sols, [limit](const Solution &s) {
        return !(s.totalArea <= limit);
    });
}

std::size_t
filterByAccessTime(std::vector<Solution> &sols, double slack)
{
    OBS_PROFILE_SCOPE("optimizer.filterByAccessTime");
    if (sols.empty())
        return 0;
    const double best =
        minOf(sols, [](const Solution &s) { return s.accessTime; });
    const double limit = best * (1.0 + slack);
    return std::erase_if(sols, [limit](const Solution &s) {
        return !(s.accessTime <= limit);
    });
}

ObjectiveScales
objectiveScales(const std::vector<Solution> &sols)
{
    ObjectiveScales sc;
    sc.readEnergy =
        minOf(sols, [](const Solution &s) { return s.readEnergy; });
    // Normalize static power over leakage + refresh so a DRAM solution
    // paying refresh power is compared on the same scale it is scored
    // on (normalizing by min leakage alone overweighted the term).
    sc.staticPower = minOf(sols, [](const Solution &s) {
        return s.leakage + s.refreshPower;
    });
    sc.randomCycle =
        minOf(sols, [](const Solution &s) { return s.randomCycle; });
    sc.interleaveCycle = minOf(
        sols, [](const Solution &s) { return s.interleaveCycle; });
    sc.accessTime =
        minOf(sols, [](const Solution &s) { return s.accessTime; });
    sc.totalArea =
        minOf(sols, [](const Solution &s) { return s.totalArea; });
    return sc;
}

double
objectiveValue(const Solution &s, const OptimizationWeights &w,
               const ObjectiveScales &sc)
{
    return term(w.dynamicEnergy, s.readEnergy, sc.readEnergy) +
           term(w.leakage, s.leakage + s.refreshPower, sc.staticPower) +
           term(w.randomCycle, s.randomCycle, sc.randomCycle) +
           term(w.interleaveCycle, s.interleaveCycle,
                sc.interleaveCycle) +
           term(w.accessTime, s.accessTime, sc.accessTime) +
           term(w.area, s.totalArea, sc.totalArea);
}

Solution
selectBest(std::vector<Solution> &sols, const OptimizationWeights &w)
{
    OBS_PROFILE_SCOPE("optimizer.selectBest");
    if (sols.empty())
        throw std::runtime_error("selectBest: empty solution set");
    const ObjectiveScales sc = objectiveScales(sols);
    double best_obj = std::numeric_limits<double>::infinity();
    const Solution *best = nullptr;
    for (Solution &s : sols) {
        s.objective = objectiveValue(s, w, sc);
        if (s.objective < best_obj) {
            best_obj = s.objective;
            best = &s;
        }
    }
    return *best;
}

SolveResult
optimize(const MemoryConfig &cfg, std::vector<Solution> all)
{
    if (all.empty())
        throw std::runtime_error(
            "no feasible solutions for " + cfg.summary());

    SolveResult res;
    res.all = all;
    res.stats.solutionsBuilt = all.size();

    res.stats.areaPruned = filterByArea(all, cfg.maxAreaConstraint);
    res.stats.timePruned =
        filterByAccessTime(all, cfg.maxAccTimeConstraint);
    res.best = selectBest(all, cfg.weights);
    res.filtered = std::move(all);
    return res;
}

} // namespace cactid
