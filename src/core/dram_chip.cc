/**
 * @file
 * Main-memory DRAM chip model implementation.
 */

#include "core/dram_chip.hh"

#include <cmath>

namespace cactid {

namespace {

/** Pad ring / spine / charge pump area overhead on the banks. */
constexpr double kChipOverhead = 1.12;

} // namespace

void
addChipLevel(const Technology &t, const MemoryConfig &cfg, Solution &s)
{
    // --- Area: banks plus chip periphery.
    s.totalArea = cfg.nBanks * s.bankArea * kChipOverhead;
    s.areaEfficiency =
        s.data.areaEfficiency * s.data.area * cfg.nBanks / s.totalArea;

    // --- Global routing from the center spine to the banks.
    const double chip_w = std::sqrt(s.totalArea * 2.0);
    const double chip_h = s.totalArea / chip_w;
    const double route = (chip_w + chip_h) / 4.0;

    const CellParams &cell = t.cell(cfg.dataCellTech);
    const RepeatedWire global(t.wire(WirePlane::Global),
                              t.device(cell.peripheralDevice),
                              cfg.repeaterDerate);
    const double route_delay = global.delayPerM() * route;

    s.tRcd += route_delay;
    s.tCas += route_delay;
    s.tRp += route_delay;
    s.tRas += route_delay;
    s.tRc = s.tRas + s.tRp;
    s.accessTime = s.tRcd + s.tCas;

    // --- Burst accounting: one READ/WRITE command moves burstLength
    // bits per pin; internal prefetches of prefetchWidth bits per pin
    // feed the burst.
    const int bits_per_cmd = cfg.ioBits * cfg.burstLength;
    const int prefetches =
        std::max(1, cfg.burstLength / cfg.prefetchWidth);
    const double route_energy_bit = global.energyPerM() * route * 0.5;

    const double addr_route_energy =
        (cfg.physicalAddressBits + 8.0) * route_energy_bit;
    s.activateEnergy += addr_route_energy;
    s.readBurstEnergy = s.readBurstEnergy * prefetches +
                        bits_per_cmd * route_energy_bit +
                        addr_route_energy;
    s.writeBurstEnergy = s.writeBurstEnergy * prefetches +
                         bits_per_cmd * route_energy_bit +
                         addr_route_energy;

    // --- Whole-chip refresh and leakage already cover all banks via
    // combineSolution; add the global-wire repeaters and the always-on
    // interface circuitry (DLL, clock tree, input buffers), which
    // dominates the standby power of a commodity part.
    constexpr double kInterfaceStandbyW = 0.085;
    s.leakage += global.leakagePerM() * route *
                     (cfg.physicalAddressBits + 2.0 * cfg.ioBits *
                                                    cfg.prefetchWidth) +
                 kInterfaceStandbyW;
}

} // namespace cactid
