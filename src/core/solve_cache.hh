/**
 * @file
 * Memoized solve cache: sharded in-memory LRU over canonical config
 * fingerprints, with an optional on-disk store so cold processes and
 * sweep shards start warm.
 *
 * Design-space sweeps re-solve the same (technology, capacity,
 * geometry) points over and over; a production solve service answers
 * millions of queries dominated by repeats.  The cache memoizes the
 * deterministic part of a SolveResult (best / filtered / all plus the
 * deterministic stats counters) keyed by the 128-bit canonical config
 * fingerprint (core/fingerprint.hh), and a hit is byte-identical to
 * re-running the solve — the engine's jobs=N == jobs=1 determinism
 * guarantee is what makes memoization sound in the first place.
 *
 * Concurrency: the cache is sharded by fingerprint; every shard has
 * its own lock and LRU list, and all counters are atomics, so many
 * engine threads may hit one cache concurrently (TSan-tested).
 *
 * Durability: with `diskDir` set, every insert also writes one
 * `sc-<fingerprint>.v1` record ("cactid-cache-v1", written via the
 * shared atomic-file helper, crc-guarded) and a memory miss falls
 * back to the directory.  Records are stamped with the build
 * fingerprint of the binary that wrote them: a record written by a
 * different model build, a torn write, or an alien file is rejected
 * (engine.cache.rejected, one-line warning) and re-solved — stale
 * models never serve.
 */

#ifndef CACTID_CORE_SOLVE_CACHE_HH
#define CACTID_CORE_SOLVE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.hh"
#include "core/result.hh"

namespace cactid {

namespace obs {
class Registry;
}

/** Capacity bounds and durability knobs of a SolveCache. */
struct SolveCacheConfig {
    /** Entry-count bound over all shards (>= 1 enforced per shard). */
    std::size_t maxEntries = 4096;

    /** Approximate byte bound over all shards. */
    std::size_t maxBytes = std::size_t(256) << 20;

    /** Lock shards (clamped to >= 1); fingerprints spread evenly. */
    int shards = 8;

    /** On-disk store directory; empty = in-memory only. */
    std::string diskDir;

    /**
     * Build stamp written into (and demanded of) on-disk records.
     * Empty = SolveCache::defaultBuildStamp(), derived from the
     * compiled-in build info — so records never outlive the model
     * that produced them.  Tests override it to simulate stale files.
     */
    std::string buildStamp;

    /**
     * One-line diagnostics (rejected records).  Default: the first
     * rejection per cache prints to stderr; later ones only count.
     */
    std::function<void(const std::string &)> onWarn;
};

/** Point-in-time counter snapshot (all monotonic except occupancy). */
struct SolveCacheCounters {
    std::uint64_t hits = 0;       ///< served from memory or disk
    std::uint64_t misses = 0;     ///< full miss: caller must solve
    std::uint64_t evictions = 0;  ///< LRU evictions (bounds)
    std::uint64_t inserts = 0;    ///< entries stored after a solve
    std::uint64_t diskHits = 0;   ///< memory miss served by the store
    std::uint64_t diskWrites = 0; ///< records persisted
    std::uint64_t rejected = 0;   ///< invalid/stale records refused
    std::uint64_t entries = 0;    ///< current resident entries
    std::uint64_t bytes = 0;      ///< current approximate bytes
};

/** The memoized solve cache. */
class SolveCache {
public:
    explicit SolveCache(SolveCacheConfig cfg = {});

    /**
     * Look @p fp up; on a hit copy the memoized result into @p out
     * and return true.  @p key is the canonical key string of the
     * request — compared byte-wise against the entry so even a
     * 128-bit fingerprint collision cannot serve the wrong config.
     *
     * @p want_all demands SolveResult::all: an entry memoized by a
     * streaming solve (no `all`) misses for a collect-all request
     * (and is upgraded by the insert that follows); an entry that has
     * `all` serves a streaming request with `all` stripped, matching
     * a direct streaming solve byte for byte.
     */
    bool lookup(const ConfigFingerprint &fp, const std::string &key,
                bool want_all, SolveResult &out);

    /**
     * Memoize @p res for (@p fp, @p key); @p has_all records whether
     * res.all was collected.  Replaces any existing entry, bumps it
     * to most-recently-used, evicts LRU entries past the bounds, and
     * persists a record when a disk directory is configured.
     */
    void insert(const ConfigFingerprint &fp, const std::string &key,
                const SolveResult &res, bool has_all);

    SolveCacheCounters counters() const;

    const SolveCacheConfig &config() const { return cfg_; }

    /** Build stamp actually in force (config override or default). */
    const std::string &buildStamp() const { return stamp_; }

    /**
     * Stamp derived from the compiled-in build info (git describe,
     * compiler, flags, build type): equal binaries agree, any model
     * rebuild disagrees.
     */
    static std::string defaultBuildStamp();

    // --- Record codec (exposed for tests and tooling).

    /** Serialize one cache record ("cactid-cache-v1" text). */
    std::string encodeRecord(const std::string &key,
                             const SolveResult &res,
                             bool has_all) const;

    /** decodeRecord outcome. */
    enum class Load : std::uint8_t {
        Loaded,   ///< @p out holds the persisted result
        Rejected, ///< torn, corrupt, stale build, or alien record
    };

    /**
     * Parse + validate @p bytes against (@p fp, @p key); Rejected on
     * any defect (bad crc, wrong version header, wrong build stamp,
     * wrong key).  @p why receives a one-line reason when non-null.
     */
    Load decodeRecord(const std::string &bytes,
                      const ConfigFingerprint &fp,
                      const std::string &key, SolveResult &out,
                      bool &has_all, std::string *why = nullptr) const;

    /** On-disk record path of @p fp (empty when no disk store). */
    std::string recordPath(const ConfigFingerprint &fp) const;

private:
    struct Entry {
        ConfigFingerprint fp;
        std::string key;
        SolveResult res;
        bool hasAll = false;
        std::size_t bytes = 0;
    };

    struct Shard {
        std::mutex mtx;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<std::uint64_t,
                           std::list<Entry>::iterator>
            index; ///< fp.lo -> entry (fp.hi + key checked on hit)
        std::size_t bytes = 0;
    };

    Shard &shardFor(const ConfigFingerprint &fp);
    void storeLocked(Shard &sh, const ConfigFingerprint &fp,
                     const std::string &key, const SolveResult &res,
                     bool has_all);
    bool diskLookup(const ConfigFingerprint &fp,
                    const std::string &key, bool want_all,
                    SolveResult &out);
    void warnOnce(const std::string &msg);

    SolveCacheConfig cfg_;
    std::string stamp_;
    std::size_t maxEntriesPerShard_;
    std::size_t maxBytesPerShard_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> evictions_{0};
    mutable std::atomic<std::uint64_t> inserts_{0};
    mutable std::atomic<std::uint64_t> diskHits_{0};
    mutable std::atomic<std::uint64_t> diskWrites_{0};
    mutable std::atomic<std::uint64_t> rejected_{0};
    std::atomic<bool> warned_{false};
};

/**
 * Publish a counter snapshot under the registry's engine.cache.*
 * namespace.  Every name is always written — an enabled-but-unhit
 * cache dumps explicit zeros, so shard registry merges never disagree
 * on the label set.
 */
void registerSolveCacheStats(obs::Registry &r,
                             const SolveCacheCounters &c);

/**
 * The process-global cache consulted by SolverEngine runs whose
 * options carry no explicit cache (nullptr by default: no caching).
 * Tools install one behind `--cache/--cache-dir` before constructing
 * studies, so every solve in the process is memoized.  Not owned.
 */
SolveCache *globalSolveCache();
void setGlobalSolveCache(SolveCache *cache);

} // namespace cactid

#endif // CACTID_CORE_SOLVE_CACHE_HH
