/**
 * @file
 * Solution structures returned by the CACTI-D solvers.
 */

#ifndef CACTID_CORE_RESULT_HH
#define CACTID_CORE_RESULT_HH

#include <string>
#include <vector>

#include "array/bank.hh"
#include "core/config.hh"
#include "core/engine_stats.hh"

namespace cactid {

/**
 * One complete solution: the chosen data (and, for caches, tag) array
 * organizations plus the rolled-up whole-memory metrics.
 */
struct Solution {
    BankMetrics data;     ///< data array of one bank
    BankMetrics tag;      ///< tag array of one bank (caches only)
    bool hasTag = false;

    // --- Whole-structure roll-up (all banks).
    double totalArea = 0.0;       ///< m^2, all banks
    double bankArea = 0.0;        ///< m^2, one bank
    double areaEfficiency = 0.0;  ///< cell area / total area
    double accessTime = 0.0;      ///< s, per the access mode
    double randomCycle = 0.0;     ///< s
    double interleaveCycle = 0.0; ///< multisubbank interleave cycle (s)
    double readEnergy = 0.0;      ///< J per read access (tag + data)
    double writeEnergy = 0.0;     ///< J per write access
    double leakage = 0.0;         ///< W, all banks incl. tags
    double refreshPower = 0.0;    ///< W, all banks (DRAM)

    // --- Main-memory timing interface (MainMemoryChip only).
    double tRcd = 0.0;
    double tCas = 0.0;
    double tRp = 0.0;
    double tRas = 0.0;
    double tRc = 0.0;
    double tRrd = 0.0;
    double activateEnergy = 0.0;  ///< per ACTIVATE+PRECHARGE pair (J)
    double readBurstEnergy = 0.0; ///< per READ command (J)
    double writeBurstEnergy = 0.0;

    /** Independently interleavable units per bank. */
    int nSubbanks = 0;

    /** Objective value assigned by the optimizer (lower is better). */
    double objective = 0.0;

    /** Multi-line human-readable report. */
    std::string report() const;
};

/** Result of a solve: the chosen solution plus the explored space. */
struct SolveResult {
    Solution best;
    /** All feasible solutions that passed the constraint filters. */
    std::vector<Solution> filtered;
    /**
     * All feasible solutions (for design-space scatter plots).  Only
     * populated when SolverOptions::collectAll is set (the default for
     * the plain solve() wrappers); a streaming engine run leaves it
     * empty and retains only constraint survivors.
     */
    std::vector<Solution> all;
    /** How the solve went: counters and per-stage wall times. */
    EngineStats stats;
};

} // namespace cactid

#endif // CACTID_CORE_RESULT_HH
