/**
 * @file
 * SolverEngine: the streaming, parallel, instrumented solve pipeline.
 *
 * The engine replaces the old enumerate-everything-then-filter path
 * with a four-stage pipeline:
 *
 *   1. partition candidates stream from forEachPartition (no up-front
 *      materialization of the solution space),
 *   2. bank construction + solution combination fan out across a small
 *      worker pool (SolverOptions::jobs),
 *   3. results merge back in enumeration order, with an incremental
 *      max-area prune bounding the live working set,
 *   4. the composable optimizer passes pick the winner.
 *
 * Determinism guarantee: the merge folds candidate results in
 * enumeration-index order and every per-candidate computation is
 * independent, so a run with jobs=N produces bit-identical
 * SolveResult::best and SolveResult::filtered to a run with jobs=1.
 *
 * The engine is stateless: one engine may solve many configs, from
 * many threads, concurrently.
 */

#ifndef CACTID_CORE_ENGINE_HH
#define CACTID_CORE_ENGINE_HH

#include <cstddef>
#include <vector>

#include "core/config.hh"
#include "core/engine_stats.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

class SolveCache;

/** Knobs controlling how a solve executes (not what it computes). */
struct SolverOptions {
    /**
     * Worker threads for candidate evaluation; 0 means
     * std::thread::hardware_concurrency(), 1 runs fully serial.
     */
    int jobs = 0;

    /**
     * Keep every feasible solution in SolveResult::all (design-space
     * scatter plots).  When false the engine streams: only solutions
     * that can still survive the max-area constraint stay live, which
     * bounds peak memory on large sweeps.
     */
    bool collectAll = true;

    /**
     * Memoization cache consulted by run(cfg) and solveBatch().
     * nullptr falls back to globalSolveCache() (itself nullptr by
     * default, i.e. no caching).  Caching never changes results: the
     * engine's determinism guarantee makes a hit byte-identical to
     * re-solving.  The explicit-Technology run(t, cfg) overload never
     * caches — the cache key cannot see a caller-constructed
     * Technology, so memoizing it could serve stale physics.
     */
    SolveCache *cache = nullptr;
};

/** What solveBatch did with its requests (dedup effectiveness). */
struct BatchStats {
    std::size_t requests = 0;     ///< configs passed in
    std::size_t uniqueSolves = 0; ///< distinct canonical fingerprints
    std::size_t cacheHits = 0;    ///< unique solves served by the cache
    std::size_t shareGroups = 0;  ///< pipelines actually executed
};

/** The streaming, parallel, instrumented solve pipeline. */
class SolverEngine {
public:
    explicit SolverEngine(SolverOptions opts = {}) : opts_(opts) {}

    /**
     * Solve @p cfg against @p t.  Statistics are always collected into
     * the result's stats field; pass @p stats to also receive a copy
     * (convenient when the result itself is discarded).
     *
     * @throws std::runtime_error when no candidate is feasible.
     */
    SolveResult run(const Technology &t, const MemoryConfig &cfg,
                    EngineStats *stats = nullptr) const;

    /**
     * Construct the technology from the config, then run.  This
     * overload consults the configured (or global) SolveCache: a hit
     * returns the memoized result — byte-identical best/filtered/all,
     * stats from the solve that populated the entry — and a miss
     * solves and memoizes.
     */
    SolveResult run(const MemoryConfig &cfg,
                    EngineStats *stats = nullptr) const;

    /**
     * Solve many configs at once, returning results in request order,
     * each bit-identical (best/filtered/all) to an independent
     * run(cfg) call at any jobs setting.
     *
     * The batch is collapsed twice before any work happens: requests
     * with equal canonical fingerprints share one solve, and requests
     * that differ only in objective weights share one partition
     * enumeration + evaluation + constraint pipeline (the weights
     * only enter the final objective pass, which runs per request).
     * Unique solves go through the cache like run(cfg).
     *
     * @throws std::runtime_error when any request has no feasible
     *         candidates (batch requests are all-or-nothing; callers
     *         needing per-request isolation fall back to run()).
     */
    std::vector<SolveResult>
    solveBatch(const std::vector<MemoryConfig> &cfgs,
               BatchStats *batch_stats = nullptr) const;

    const SolverOptions &options() const { return opts_; }

    /** Threads a given jobs setting resolves to on this machine. */
    static int resolveJobs(int jobs);

private:
    /**
     * Stages 1-3 plus the access-time pass: everything before the
     * objective.  Fills res.all (when collecting) and res.stats, and
     * returns the constraint survivors with objectives unset.  This
     * is the weight-independent prefix solveBatch shares across a
     * group.
     */
    std::vector<Solution> runPipeline(const Technology &t,
                                      const MemoryConfig &cfg,
                                      SolveResult &res) const;

    SolverOptions opts_;
};

} // namespace cactid

#endif // CACTID_CORE_ENGINE_HH
