/**
 * @file
 * SolverEngine: the streaming, parallel, instrumented solve pipeline.
 *
 * The engine replaces the old enumerate-everything-then-filter path
 * with a four-stage pipeline:
 *
 *   1. partition candidates stream from forEachPartition (no up-front
 *      materialization of the solution space),
 *   2. bank construction + solution combination fan out across a small
 *      worker pool (SolverOptions::jobs),
 *   3. results merge back in enumeration order, with an incremental
 *      max-area prune bounding the live working set,
 *   4. the composable optimizer passes pick the winner.
 *
 * Determinism guarantee: the merge folds candidate results in
 * enumeration-index order and every per-candidate computation is
 * independent, so a run with jobs=N produces bit-identical
 * SolveResult::best and SolveResult::filtered to a run with jobs=1.
 *
 * The engine is stateless: one engine may solve many configs, from
 * many threads, concurrently.
 */

#ifndef CACTID_CORE_ENGINE_HH
#define CACTID_CORE_ENGINE_HH

#include "core/config.hh"
#include "core/engine_stats.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

/** Knobs controlling how a solve executes (not what it computes). */
struct SolverOptions {
    /**
     * Worker threads for candidate evaluation; 0 means
     * std::thread::hardware_concurrency(), 1 runs fully serial.
     */
    int jobs = 0;

    /**
     * Keep every feasible solution in SolveResult::all (design-space
     * scatter plots).  When false the engine streams: only solutions
     * that can still survive the max-area constraint stay live, which
     * bounds peak memory on large sweeps.
     */
    bool collectAll = true;
};

/** The streaming, parallel, instrumented solve pipeline. */
class SolverEngine {
public:
    explicit SolverEngine(SolverOptions opts = {}) : opts_(opts) {}

    /**
     * Solve @p cfg against @p t.  Statistics are always collected into
     * the result's stats field; pass @p stats to also receive a copy
     * (convenient when the result itself is discarded).
     *
     * @throws std::runtime_error when no candidate is feasible.
     */
    SolveResult run(const Technology &t, const MemoryConfig &cfg,
                    EngineStats *stats = nullptr) const;

    /** Construct the technology from the config, then run. */
    SolveResult run(const MemoryConfig &cfg,
                    EngineStats *stats = nullptr) const;

    const SolverOptions &options() const { return opts_; }

    /** Threads a given jobs setting resolves to on this machine. */
    static int resolveJobs(int jobs);

private:
    SolverOptions opts_;
};

} // namespace cactid

#endif // CACTID_CORE_ENGINE_HH
