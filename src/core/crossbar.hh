/**
 * @file
 * Crossbar delay/energy model (after Orion, Wang et al. MICRO'02),
 * used for the L2-to-L3 interconnect of the LLC study (paper
 * section 4.1).
 */

#ifndef CACTID_CORE_CROSSBAR_HH
#define CACTID_CORE_CROSSBAR_HH

#include "tech/technology.hh"

namespace cactid {

/** An n x n crossbar of w-bit links. */
class Crossbar
{
  public:
    /**
     * @param t             technology
     * @param n_ports       input (= output) ports
     * @param bits_per_port link width in bits
     * @param route_length  physical route length of one traversal (m);
     *                      <= 0 derives it from the crossbar geometry
     */
    Crossbar(const Technology &t, int n_ports, int bits_per_port,
             double route_length = 0.0);

    /** One-way traversal delay incl. arbitration (s). */
    double delay() const { return delay_; }

    /** Energy of one w-bit transfer (J). */
    double energyPerTransfer() const { return energy_; }

    /** Repeater + arbiter leakage (W). */
    double leakage() const { return leakage_; }

    /** Layout area (m^2). */
    double area() const { return area_; }

  private:
    double delay_ = 0.0;
    double energy_ = 0.0;
    double leakage_ = 0.0;
    double area_ = 0.0;
};

} // namespace cactid

#endif // CACTID_CORE_CROSSBAR_HH
