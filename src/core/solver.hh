/**
 * @file
 * Solution-space enumeration: builds every feasible array organization
 * for a MemoryConfig.
 */

#ifndef CACTID_CORE_SOLVER_HH
#define CACTID_CORE_SOLVER_HH

#include <vector>

#include "core/config.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

/**
 * Enumerate every feasible complete solution for @p cfg.  For caches the
 * tag array is solved once (latency-optimal) and combined with each
 * feasible data organization; for main-memory chips chip-level routing
 * and interface effects are added by the DRAM chip model.
 */
std::vector<Solution> enumerateSolutions(const Technology &t,
                                         const MemoryConfig &cfg);

} // namespace cactid

#endif // CACTID_CORE_SOLVER_HH
