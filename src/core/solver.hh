/**
 * @file
 * Candidate evaluation: turns one partition of the organization space
 * into a complete Solution for a MemoryConfig.  The SolverEngine fans
 * these evaluations out across worker threads; enumerateSolutions() is
 * the serial collect-everything convenience wrapper.
 */

#ifndef CACTID_CORE_SOLVER_HH
#define CACTID_CORE_SOLVER_HH

#include <optional>
#include <vector>

#include "array/bank.hh"
#include "array/partition.hh"
#include "core/cache_model.hh"
#include "core/config.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

/** Derive the data-bank build specification from a config. */
BankSpec makeBankSpec(const MemoryConfig &cfg);

/**
 * Per-config evaluation kernel: validates the config once, solves the
 * tag path once (caches), and then maps candidate partitions to
 * complete solutions.  operator() is const and touches no shared
 * mutable state, so one evaluator may be called concurrently from many
 * threads.
 */
class CandidateEvaluator {
public:
    CandidateEvaluator(const Technology &t, const MemoryConfig &cfg);

    /**
     * Evaluate one candidate: build the bank, combine with the tag
     * path, and add chip-level effects for main-memory parts.  Returns
     * nullopt when the bank is infeasible.
     */
    std::optional<Solution> operator()(const Partition &p) const;

    const BankSpec &spec() const { return spec_; }

private:
    const Technology &t_;
    const MemoryConfig &cfg_;
    BankSpec spec_;
    std::optional<TagPath> tag_;
};

/**
 * Enumerate every feasible complete solution for @p cfg.  For caches the
 * tag array is solved once (latency-optimal) and combined with each
 * feasible data organization; for main-memory chips chip-level routing
 * and interface effects are added by the DRAM chip model.
 */
std::vector<Solution> enumerateSolutions(const Technology &t,
                                         const MemoryConfig &cfg);

} // namespace cactid

#endif // CACTID_CORE_SOLVER_HH
