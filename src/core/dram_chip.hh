/**
 * @file
 * Main-memory DRAM chip model (paper section 2.1): chip-level routing,
 * pad/periphery area, burst handling, and refresh for a multi-bank
 * commodity DRAM part.
 */

#ifndef CACTID_CORE_DRAM_CHIP_HH
#define CACTID_CORE_DRAM_CHIP_HH

#include "core/config.hh"
#include "core/result.hh"
#include "tech/technology.hh"

namespace cactid {

/**
 * Augment a per-bank solution with chip-level effects: global
 * address/data routing across the die, pad-ring area overhead, READ and
 * WRITE burst energies for the configured burst length, and whole-chip
 * refresh power.
 */
void addChipLevel(const Technology &t, const MemoryConfig &cfg,
                  Solution &s);

} // namespace cactid

#endif // CACTID_CORE_DRAM_CHIP_HH
