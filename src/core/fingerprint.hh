/**
 * @file
 * Canonical config fingerprint: the cache key of a solve.
 *
 * Two MemoryConfigs produce the same fingerprint exactly when every
 * solve-relevant field is equal — the fields that determine the bytes
 * of SolveResult::best / filtered / all.  Execution knobs (worker
 * count, streaming mode, export paths, request ids) are deliberately
 * outside the key: a request solved with `--jobs 8` must hit the
 * entry a `--jobs 1` solve stored.
 *
 * The key is built in two steps so it is auditable: canonicalKey()
 * renders every solve-relevant field into a stable `field=value` text
 * line (doubles through the locale-proof round-trip fmtDouble), and
 * the 128-bit fingerprint is two independently seeded FNV-1a passes
 * over those bytes.  The text form is embedded in on-disk cache
 * records, so a collision or a scope bug is diagnosable from the
 * record alone.
 *
 * Scope rule for new MemoryConfig fields: if a field can change any
 * byte of best/filtered/all, it MUST be added to canonicalKey() (the
 * fingerprint unit tests enumerate the struct exhaustively and fail
 * on unhashed solve-relevant fields).
 */

#ifndef CACTID_CORE_FINGERPRINT_HH
#define CACTID_CORE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "core/config.hh"

namespace cactid {

/** 128-bit config fingerprint (two independent 64-bit FNV-1a lanes). */
struct ConfigFingerprint {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    friend bool
    operator==(const ConfigFingerprint &a, const ConfigFingerprint &b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }
    friend bool
    operator!=(const ConfigFingerprint &a, const ConfigFingerprint &b)
    {
        return !(a == b);
    }

    /** 32 lower-case hex digits (record file names, diagnostics). */
    std::string hex() const;
};

/**
 * The canonical solve-relevant byte string of @p cfg
 * ("cactid-config-v1|type=cache|size=…").  Every solve-relevant field
 * appears, in a fixed order, with round-trip-exact double rendering.
 */
std::string canonicalKey(const MemoryConfig &cfg);

/**
 * Fingerprint of an already-rendered canonical key string — the
 * primitive configFingerprint() is built on.  Exposed so cache-record
 * validation can re-derive the fingerprint from the key embedded in a
 * record and detect alien or relocated files.
 */
ConfigFingerprint keyFingerprint(const std::string &key);

/** Fingerprint of the full canonical key. */
ConfigFingerprint configFingerprint(const MemoryConfig &cfg);

/**
 * The canonical key with the objective weights zeroed out: requests
 * sharing this key differ at most in OptimizationWeights, so they
 * share partition enumeration, bank evaluation and both constraint
 * filters — only the final objective pass is per-request.  solveBatch
 * groups by this key.
 */
std::string canonicalShareKey(const MemoryConfig &cfg);

/** Fingerprint of the share key (enumeration-sharing group id). */
ConfigFingerprint shareFingerprint(const MemoryConfig &cfg);

} // namespace cactid

#endif // CACTID_CORE_FINGERPRINT_HH
