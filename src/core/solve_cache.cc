/**
 * @file
 * Memoized solve cache implementation.
 */

#include "core/solve_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <sys/stat.h>

#include "obs/build_info.hh"
#include "obs/numfmt.hh"
#include "obs/registry.hh"
#include "util/atomic_file.hh"
#include "util/hash.hh"

namespace cactid {

namespace {

std::string
num(double v)
{
    return obs::fmtDouble(v);
}

/** strtod on a whole token: locale-proof for fmtDouble output. */
bool
parseDouble(std::istringstream &ss, double &out)
{
    std::string tok;
    if (!(ss >> tok))
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
}

bool
parseU64(std::istringstream &ss, std::uint64_t &out)
{
    return static_cast<bool>(ss >> out);
}

bool
parseInt(std::istringstream &ss, int &out)
{
    return static_cast<bool>(ss >> out);
}

bool
parseBool(std::istringstream &ss, bool &out)
{
    int v = 0;
    if (!(ss >> v) || (v != 0 && v != 1))
        return false;
    out = v != 0;
    return true;
}

void
encodeBank(std::ostream &os, const BankMetrics &b)
{
    os << b.part.rowsPerSubarray << ' ' << b.part.colsPerSubarray
       << ' ' << b.part.blMux << ' ' << b.part.samMux << ' '
       << b.nMats << ' ' << b.gridX << ' ' << b.gridY << ' '
       << b.nActiveMats << ' ' << num(b.width) << ' '
       << num(b.height) << ' ' << num(b.area) << ' '
       << num(b.areaEfficiency) << ' ' << num(b.accessTime) << ' '
       << num(b.randomCycle) << ' ' << num(b.interleaveCycle) << ' '
       << num(b.tRcd) << ' ' << num(b.tCas) << ' ' << num(b.tRp)
       << ' ' << num(b.tRas) << ' ' << num(b.tRc) << ' '
       << num(b.tRrd) << ' ' << num(b.readEnergy) << ' '
       << num(b.writeEnergy) << ' ' << num(b.activateEnergy) << ' '
       << num(b.readBurstEnergy) << ' ' << num(b.writeBurstEnergy)
       << ' ' << num(b.leakage) << ' ' << num(b.refreshPower) << ' '
       << (b.feasible ? 1 : 0);
}

bool
decodeBank(std::istringstream &ss, BankMetrics &b)
{
    return parseInt(ss, b.part.rowsPerSubarray) &&
           parseInt(ss, b.part.colsPerSubarray) &&
           parseInt(ss, b.part.blMux) && parseInt(ss, b.part.samMux) &&
           parseInt(ss, b.nMats) && parseInt(ss, b.gridX) &&
           parseInt(ss, b.gridY) && parseInt(ss, b.nActiveMats) &&
           parseDouble(ss, b.width) && parseDouble(ss, b.height) &&
           parseDouble(ss, b.area) &&
           parseDouble(ss, b.areaEfficiency) &&
           parseDouble(ss, b.accessTime) &&
           parseDouble(ss, b.randomCycle) &&
           parseDouble(ss, b.interleaveCycle) &&
           parseDouble(ss, b.tRcd) && parseDouble(ss, b.tCas) &&
           parseDouble(ss, b.tRp) && parseDouble(ss, b.tRas) &&
           parseDouble(ss, b.tRc) && parseDouble(ss, b.tRrd) &&
           parseDouble(ss, b.readEnergy) &&
           parseDouble(ss, b.writeEnergy) &&
           parseDouble(ss, b.activateEnergy) &&
           parseDouble(ss, b.readBurstEnergy) &&
           parseDouble(ss, b.writeBurstEnergy) &&
           parseDouble(ss, b.leakage) &&
           parseDouble(ss, b.refreshPower) &&
           parseBool(ss, b.feasible);
}

void
encodeSolution(std::ostream &os, const Solution &s)
{
    os << (s.hasTag ? 1 : 0) << ' ' << num(s.totalArea) << ' '
       << num(s.bankArea) << ' ' << num(s.areaEfficiency) << ' '
       << num(s.accessTime) << ' ' << num(s.randomCycle) << ' '
       << num(s.interleaveCycle) << ' ' << num(s.readEnergy) << ' '
       << num(s.writeEnergy) << ' ' << num(s.leakage) << ' '
       << num(s.refreshPower) << ' ' << num(s.tRcd) << ' '
       << num(s.tCas) << ' ' << num(s.tRp) << ' ' << num(s.tRas)
       << ' ' << num(s.tRc) << ' ' << num(s.tRrd) << ' '
       << num(s.activateEnergy) << ' ' << num(s.readBurstEnergy)
       << ' ' << num(s.writeBurstEnergy) << ' ' << s.nSubbanks << ' '
       << num(s.objective) << ' ';
    encodeBank(os, s.data);
    os << ' ';
    encodeBank(os, s.tag);
}

bool
decodeSolution(const std::string &line, Solution &s)
{
    std::istringstream ss(line);
    return parseBool(ss, s.hasTag) && parseDouble(ss, s.totalArea) &&
           parseDouble(ss, s.bankArea) &&
           parseDouble(ss, s.areaEfficiency) &&
           parseDouble(ss, s.accessTime) &&
           parseDouble(ss, s.randomCycle) &&
           parseDouble(ss, s.interleaveCycle) &&
           parseDouble(ss, s.readEnergy) &&
           parseDouble(ss, s.writeEnergy) &&
           parseDouble(ss, s.leakage) &&
           parseDouble(ss, s.refreshPower) && parseDouble(ss, s.tRcd) &&
           parseDouble(ss, s.tCas) && parseDouble(ss, s.tRp) &&
           parseDouble(ss, s.tRas) && parseDouble(ss, s.tRc) &&
           parseDouble(ss, s.tRrd) &&
           parseDouble(ss, s.activateEnergy) &&
           parseDouble(ss, s.readBurstEnergy) &&
           parseDouble(ss, s.writeBurstEnergy) &&
           parseInt(ss, s.nSubbanks) && parseDouble(ss, s.objective) &&
           decodeBank(ss, s.data) && decodeBank(ss, s.tag);
}

/** Approximate resident size of one cache entry. */
std::size_t
entryBytes(const std::string &key, const SolveResult &res)
{
    // Key bytes + one Solution per stored element (best counts as
    // one) + a fixed allowance for the list/map node bookkeeping.
    return key.size() +
           (res.filtered.size() + res.all.size() + 1) *
               sizeof(Solution) +
           128;
}

} // namespace

SolveCache::SolveCache(SolveCacheConfig cfg) : cfg_(std::move(cfg))
{
    stamp_ = cfg_.buildStamp.empty() ? defaultBuildStamp()
                                     : cfg_.buildStamp;
    const int n_shards = cfg_.shards < 1 ? 1 : cfg_.shards;
    shards_.reserve(static_cast<std::size_t>(n_shards));
    for (int i = 0; i < n_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    const std::size_t n = shards_.size();
    maxEntriesPerShard_ =
        cfg_.maxEntries / n > 0 ? cfg_.maxEntries / n : 1;
    maxBytesPerShard_ = cfg_.maxBytes / n > 0 ? cfg_.maxBytes / n : 1;
    if (!cfg_.diskDir.empty())
        ::mkdir(cfg_.diskDir.c_str(), 0755); // EEXIST is fine
}

std::string
SolveCache::defaultBuildStamp()
{
    const obs::BuildInfo &b = obs::buildInfo();
    std::string s = "cactid-build|" + b.gitDescribe + "|" +
                    b.compiler + "|" + b.flags + "|" + b.buildType +
                    "|" + (b.tracingCompiled ? "trace" : "notrace");
    return util::hex16(util::fnv1a64(s));
}

SolveCache::Shard &
SolveCache::shardFor(const ConfigFingerprint &fp)
{
    return *shards_[(fp.lo ^ fp.hi) % shards_.size()];
}

bool
SolveCache::lookup(const ConfigFingerprint &fp, const std::string &key,
                   bool want_all, SolveResult &out)
{
    Shard &sh = shardFor(fp);
    {
        std::lock_guard<std::mutex> lock(sh.mtx);
        const auto it = sh.index.find(fp.lo);
        if (it != sh.index.end()) {
            Entry &e = *it->second;
            if (e.fp == fp && e.key == key &&
                (e.hasAll || !want_all)) {
                sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
                out = e.res;
                if (!want_all)
                    out.all.clear();
                hits_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
    }
    if (!cfg_.diskDir.empty() &&
        diskLookup(fp, key, want_all, out)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
SolveCache::diskLookup(const ConfigFingerprint &fp,
                       const std::string &key, bool want_all,
                       SolveResult &out)
{
    const std::string path = recordPath(fp);
    std::string bytes;
    if (!util::readFile(path, bytes))
        return false; // a missing record is a plain miss
    SolveResult res;
    bool has_all = false;
    std::string why;
    if (decodeRecord(bytes, fp, key, res, has_all, &why) !=
        Load::Loaded) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        warnOnce("rejected cache record " + path + ": " + why);
        return false;
    }
    if (!has_all && want_all)
        return false; // memoized without `all`; must re-solve
    {
        Shard &sh = shardFor(fp);
        std::lock_guard<std::mutex> lock(sh.mtx);
        storeLocked(sh, fp, key, res, has_all);
    }
    out = std::move(res);
    if (!want_all)
        out.all.clear();
    return true;
}

void
SolveCache::storeLocked(Shard &sh, const ConfigFingerprint &fp,
                        const std::string &key, const SolveResult &res,
                        bool has_all)
{
    const auto it = sh.index.find(fp.lo);
    if (it != sh.index.end()) {
        sh.bytes -= it->second->bytes;
        sh.lru.erase(it->second);
        sh.index.erase(it);
    }
    Entry e;
    e.fp = fp;
    e.key = key;
    e.res = res;
    e.hasAll = has_all;
    e.bytes = entryBytes(key, res);
    sh.bytes += e.bytes;
    sh.lru.push_front(std::move(e));
    sh.index[fp.lo] = sh.lru.begin();
    // Enforce the per-shard bounds, never evicting the sole entry (a
    // single oversized result is still worth memoizing).
    while (sh.lru.size() > 1 &&
           (sh.lru.size() > maxEntriesPerShard_ ||
            sh.bytes > maxBytesPerShard_)) {
        const Entry &victim = sh.lru.back();
        sh.bytes -= victim.bytes;
        sh.index.erase(victim.fp.lo);
        sh.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
SolveCache::insert(const ConfigFingerprint &fp, const std::string &key,
                   const SolveResult &res, bool has_all)
{
    {
        Shard &sh = shardFor(fp);
        std::lock_guard<std::mutex> lock(sh.mtx);
        storeLocked(sh, fp, key, res, has_all);
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.diskDir.empty())
        return;
    std::string err;
    if (util::writeFileAtomic(recordPath(fp),
                              encodeRecord(key, res, has_all), &err))
        diskWrites_.fetch_add(1, std::memory_order_relaxed);
    else
        warnOnce("cache record write failed: " + err);
}

SolveCacheCounters
SolveCache::counters() const
{
    SolveCacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.inserts = inserts_.load(std::memory_order_relaxed);
    c.diskHits = diskHits_.load(std::memory_order_relaxed);
    c.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mtx);
        c.entries += sh->lru.size();
        c.bytes += sh->bytes;
    }
    return c;
}

std::string
SolveCache::recordPath(const ConfigFingerprint &fp) const
{
    if (cfg_.diskDir.empty())
        return {};
    return cfg_.diskDir + "/sc-" + fp.hex() + ".v1";
}

std::string
SolveCache::encodeRecord(const std::string &key,
                         const SolveResult &res, bool has_all) const
{
    std::ostringstream os;
    os << "cactid-cache-v1\n";
    os << "build " << stamp_ << "\n";
    os << "key " << key << "\n";
    os << "hasall " << (has_all ? 1 : 0) << "\n";
    const EngineStats &st = res.stats;
    os << "stats " << st.partitionsEnumerated << ' '
       << st.partitionsInfeasible << ' ' << st.solutionsBuilt << ' '
       << st.areaPruned << ' ' << st.timePruned << ' '
       << st.peakLiveSolutions << ' ' << st.jobsUsed << ' '
       << num(st.setupSeconds) << ' ' << num(st.evaluateSeconds)
       << ' ' << num(st.filterSeconds) << ' ' << num(st.totalSeconds)
       << "\n";
    os << "best ";
    encodeSolution(os, res.best);
    os << "\n";
    os << "filtered " << res.filtered.size() << "\n";
    for (const Solution &s : res.filtered) {
        os << "s ";
        encodeSolution(os, s);
        os << "\n";
    }
    os << "all " << res.all.size() << "\n";
    for (const Solution &s : res.all) {
        os << "s ";
        encodeSolution(os, s);
        os << "\n";
    }
    std::string body = os.str();
    body += "crc " + util::hex16(util::fnv1a64(body)) + "\n";
    return body;
}

namespace {

/** Pull the `word rest-of-line` lines of a record apart. */
class RecordReader
{
  public:
    explicit RecordReader(const std::string &bytes) : ss_(bytes) {}

    bool
    next(std::string &line)
    {
        return static_cast<bool>(std::getline(ss_, line));
    }

    /** Expect a `key value` line; value is the rest of the line. */
    bool
    field(const char *key, std::string &value)
    {
        std::string line;
        if (!next(line))
            return false;
        const std::string prefix = std::string(key) + " ";
        if (line.compare(0, prefix.size(), prefix) != 0)
            return false;
        value = line.substr(prefix.size());
        return true;
    }

  private:
    std::istringstream ss_;
};

} // namespace

SolveCache::Load
SolveCache::decodeRecord(const std::string &bytes,
                         const ConfigFingerprint &fp,
                         const std::string &key, SolveResult &out,
                         bool &has_all, std::string *why) const
{
    const auto reject = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return Load::Rejected;
    };

    // Integrity first, exactly like the checkpoint store: the record
    // must end with a `crc` line whose FNV-1a matches everything
    // before it.  A torn write or a flipped byte both fail here.
    const std::size_t crc_pos = bytes.rfind("crc ");
    if (crc_pos == std::string::npos ||
        (crc_pos != 0 && bytes[crc_pos - 1] != '\n'))
        return reject("missing crc trailer (torn record)");
    const std::string_view tail =
        std::string_view(bytes).substr(crc_pos);
    if (tail.size() != 4 + 16 + 1 || tail.back() != '\n')
        return reject("malformed crc trailer (torn record)");
    const std::string crc_hex(tail.substr(4, 16));
    if (crc_hex.find_first_not_of("0123456789abcdef") !=
        std::string::npos)
        return reject("malformed crc trailer (torn record)");
    if (std::strtoull(crc_hex.c_str(), nullptr, 16) !=
        util::fnv1a64(std::string_view(bytes).substr(0, crc_pos)))
        return reject("crc mismatch (corrupt record)");

    RecordReader rd(bytes);
    std::string line, v;
    if (!rd.next(line) || line != "cactid-cache-v1")
        return reject("unrecognized version header");

    if (!rd.field("build", v))
        return reject("missing build stamp");
    if (v != stamp_)
        return reject("build fingerprint mismatch (record " + v +
                      ", binary " + stamp_ + ")");

    std::string rec_key;
    if (!rd.field("key", rec_key))
        return reject("missing canonical key");
    if (rec_key != key || keyFingerprint(rec_key) != fp)
        return reject("canonical key mismatch (alien record)");

    SolveResult res;
    if (!rd.field("hasall", v) || (v != "0" && v != "1"))
        return reject("malformed hasall field");
    has_all = v == "1";

    if (!rd.field("stats", v))
        return reject("missing stats line");
    {
        std::istringstream ss(v);
        EngineStats &st = res.stats;
        std::uint64_t peak = 0;
        const bool ok = parseU64(ss, st.partitionsEnumerated) &&
                        parseU64(ss, st.partitionsInfeasible) &&
                        parseU64(ss, st.solutionsBuilt) &&
                        parseU64(ss, st.areaPruned) &&
                        parseU64(ss, st.timePruned) &&
                        parseU64(ss, peak) &&
                        parseInt(ss, st.jobsUsed) &&
                        parseDouble(ss, st.setupSeconds) &&
                        parseDouble(ss, st.evaluateSeconds) &&
                        parseDouble(ss, st.filterSeconds) &&
                        parseDouble(ss, st.totalSeconds);
        if (!ok)
            return reject("malformed stats line");
        st.peakLiveSolutions = static_cast<std::size_t>(peak);
    }

    if (!rd.field("best", v) || !decodeSolution(v, res.best))
        return reject("malformed best solution");

    const auto read_list = [&](const char *name,
                               std::vector<Solution> &list) {
        if (!rd.field(name, v))
            return false;
        const std::size_t n = std::strtoull(v.c_str(), nullptr, 10);
        list.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            Solution s;
            if (!rd.field("s", v) || !decodeSolution(v, s))
                return false;
            list.push_back(std::move(s));
        }
        return true;
    };
    if (!read_list("filtered", res.filtered))
        return reject("malformed filtered solution list");
    if (!read_list("all", res.all))
        return reject("malformed all solution list");

    out = std::move(res);
    return Load::Loaded;
}

void
SolveCache::warnOnce(const std::string &msg)
{
    if (cfg_.onWarn) {
        cfg_.onWarn(msg);
        return;
    }
    if (!warned_.exchange(true))
        std::fprintf(stderr, "cactid: %s\n", msg.c_str());
}

void
registerSolveCacheStats(obs::Registry &r, const SolveCacheCounters &c)
{
    // Every name is written even at zero so enabled-but-unhit caches
    // dump the full label set (shard merges must agree on names).
    r.counter("engine.cache.hits") = c.hits;
    r.counter("engine.cache.misses") = c.misses;
    r.counter("engine.cache.evictions") = c.evictions;
    r.counter("engine.cache.inserts") = c.inserts;
    r.counter("engine.cache.disk_hits") = c.diskHits;
    r.counter("engine.cache.disk_writes") = c.diskWrites;
    r.counter("engine.cache.rejected") = c.rejected;
    r.counter("engine.cache.entries") = c.entries;
    r.counter("engine.cache.bytes") = c.bytes;
}

namespace {
std::atomic<SolveCache *> g_cache{nullptr};
} // namespace

SolveCache *
globalSolveCache()
{
    return g_cache.load(std::memory_order_acquire);
}

void
setGlobalSolveCache(SolveCache *cache)
{
    g_cache.store(cache, std::memory_order_release);
}

} // namespace cactid
