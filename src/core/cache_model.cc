/**
 * @file
 * Cache composition implementation.
 */

#include "core/cache_model.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "circuit/comparator.hh"

namespace cactid {

namespace {

constexpr int kStatusBits = 2; // valid + dirty (coherence adds more)

double
numSets(const MemoryConfig &cfg)
{
    return cfg.capacityBytes / (double(cfg.blockBytes) *
                                cfg.associativity);
}

} // namespace

int
tagBitsPerEntry(const MemoryConfig &cfg)
{
    const double sets = numSets(cfg);
    const int index_bits = static_cast<int>(std::round(std::log2(sets)));
    const int offset_bits =
        static_cast<int>(std::round(std::log2(cfg.blockBytes)));
    return cfg.physicalAddressBits - index_bits - offset_bits +
           kStatusBits;
}

TagPath
solveTagPath(const Technology &t, const MemoryConfig &cfg)
{
    if (cfg.type != MemoryType::Cache)
        throw std::logic_error("tag path requested for a tagless memory");

    TagPath best;
    best.tagBits = tagBitsPerEntry(cfg);
    const double sets_per_bank = numSets(cfg) / cfg.nBanks;
    const double entry_bits = double(best.tagBits) * cfg.associativity;

    BankSpec spec;
    spec.tech = cfg.tagCellTech;
    spec.sizeBits = sets_per_bank * entry_bits;
    spec.outputBits = static_cast<int>(entry_bits);
    spec.repeaterDerate = 1.0; // tags stay latency optimal
    spec.sleepTransistors = cfg.sleepTransistors;

    double best_time = std::numeric_limits<double>::infinity();
    // Tag-specific enumeration: cols = (sets-per-row) * entry bits so a
    // whole set's tags arrive in one access.
    for (int rows = 16; rows <= 8192; rows *= 2) {
        if (rows > sets_per_bank)
            break;
        for (int spr = 1; spr <= 32; spr *= 2) {
            const double n_mats = sets_per_bank / (double(rows) * spr);
            if (n_mats < 1.0)
                continue;
            const double rounded = std::round(n_mats);
            if (std::abs(n_mats - rounded) > 1e-9)
                continue;
            Partition p;
            p.rowsPerSubarray = rows;
            p.colsPerSubarray = static_cast<int>(entry_bits) * spr;
            p.blMux = 1;
            p.samMux = spr;
            const BankMetrics m = buildBank(t, spec, p);
            if (!m.feasible)
                continue;
            if (m.accessTime < best_time) {
                best_time = m.accessTime;
                best.bank = m;
            }
        }
    }
    if (!best.bank.feasible)
        throw std::runtime_error("no feasible tag organization");

    const Comparator cmp(t, t.cell(cfg.tagCellTech).peripheralDevice,
                         best.tagBits - kStatusBits);
    best.comparatorDelay = cmp.delay(Edge{}).delay;
    best.comparatorEnergy = cmp.energy() * cfg.associativity;
    best.comparatorLeakage = cmp.leakage() * cfg.associativity;
    return best;
}

Solution
combineSolution(const Technology &t, const MemoryConfig &cfg,
                const BankMetrics &data, const std::optional<TagPath> &tag)
{
    Solution s;
    s.data = data;
    s.hasTag = tag.has_value();
    if (tag)
        s.tag = tag->bank;

    const double tag_area = tag ? tag->bank.area : 0.0;
    s.bankArea = data.area + tag_area;
    s.totalArea = cfg.nBanks * s.bankArea;
    const double cell_area =
        data.areaEfficiency * data.area +
        (tag ? tag->bank.areaEfficiency * tag->bank.area : 0.0);
    s.areaEfficiency = cell_area / s.bankArea;

    // --- Access time per the access mode.
    switch (cfg.type == MemoryType::Cache ? cfg.accessMode
                                          : AccessMode::Normal) {
      case AccessMode::Normal:
        if (tag) {
            // Way select must arrive before the data leaves the bank.
            s.accessTime = std::max(tag->matchDelay(), data.accessTime);
        } else {
            s.accessTime = data.accessTime;
        }
        break;
      case AccessMode::Sequential:
        s.accessTime =
            (tag ? tag->matchDelay() : 0.0) + data.accessTime;
        break;
      case AccessMode::Fast:
        s.accessTime = std::max(tag ? tag->matchDelay() : 0.0,
                                data.accessTime);
        break;
    }

    s.randomCycle = std::max(data.randomCycle,
                             tag ? tag->bank.randomCycle : 0.0);
    s.interleaveCycle = std::max(data.interleaveCycle,
                                 tag ? tag->bank.interleaveCycle : 0.0);

    const double tag_read = tag ? tag->bank.readEnergy +
                                      tag->comparatorEnergy
                                : 0.0;
    s.readEnergy = data.readEnergy + tag_read;
    s.writeEnergy = data.writeEnergy + tag_read;

    const double tag_leak =
        tag ? tag->bank.leakage + tag->comparatorLeakage : 0.0;
    s.leakage = cfg.nBanks * (data.leakage + tag_leak);
    s.refreshPower = cfg.nBanks *
                     (data.refreshPower +
                      (tag ? tag->bank.refreshPower : 0.0));

    s.nSubbanks = data.nActiveMats > 0 ? data.nMats / data.nActiveMats
                                       : data.nMats;

    if (cfg.includeEcc) {
        // SECDED: 8 check bits per 64 data bits stored, fetched and
        // leaking alongside the data (12.5% overhead).
        constexpr double kEcc = 72.0 / 64.0;
        s.bankArea *= kEcc;
        s.totalArea *= kEcc;
        s.readEnergy *= kEcc;
        s.writeEnergy *= kEcc;
        s.leakage *= kEcc;
        s.refreshPower *= kEcc;
    }

    // Main-memory timing passthrough (chip-level routing is added by
    // the DRAM chip model).
    s.tRcd = data.tRcd;
    s.tCas = data.tCas;
    s.tRp = data.tRp;
    s.tRas = data.tRas;
    s.tRc = data.tRc;
    s.tRrd = data.tRrd;
    s.activateEnergy = data.activateEnergy;
    s.readBurstEnergy = data.readBurstEnergy;
    s.writeBurstEnergy = data.writeBurstEnergy;

    (void)t;
    return s;
}

} // namespace cactid
