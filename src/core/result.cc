/**
 * @file
 * Solution reporting.
 */

#include "core/result.hh"

#include <sstream>

namespace cactid {

std::string
Solution::report() const
{
    std::ostringstream os;
    os.precision(4);
    os << "area: " << totalArea * 1e6 << " mm^2 (bank "
       << bankArea * 1e6 << " mm^2, efficiency "
       << areaEfficiency * 100.0 << "%)\n";
    os << "access time: " << accessTime * 1e9 << " ns, random cycle: "
       << randomCycle * 1e9 << " ns, interleave cycle: "
       << interleaveCycle * 1e9 << " ns\n";
    os << "read energy: " << readEnergy * 1e9 << " nJ, write energy: "
       << writeEnergy * 1e9 << " nJ\n";
    os << "leakage: " << leakage << " W, refresh: " << refreshPower
       << " W\n";
    os << "data array: " << data.part.rowsPerSubarray << "x"
       << data.part.colsPerSubarray << " subarrays, " << data.nMats
       << " mats (" << data.gridX << "x" << data.gridY << "), blmux "
       << data.part.blMux << ", sammux " << data.part.samMux
       << ", subbanks " << nSubbanks << "\n";
    if (hasTag) {
        os << "tag array: " << tag.part.rowsPerSubarray << "x"
           << tag.part.colsPerSubarray << " subarrays, " << tag.nMats
           << " mats\n";
    }
    if (tRc > 0.0) {
        os << "tRCD " << tRcd * 1e9 << " ns, CAS " << tCas * 1e9
           << " ns, tRP " << tRp * 1e9 << " ns, tRAS " << tRas * 1e9
           << " ns, tRC " << tRc * 1e9 << " ns, tRRD " << tRrd * 1e9
           << " ns\n";
        os << "ACT energy " << activateEnergy * 1e9 << " nJ, READ "
           << readBurstEnergy * 1e9 << " nJ, WRITE "
           << writeBurstEnergy * 1e9 << " nJ\n";
    }
    return os.str();
}

} // namespace cactid
