/**
 * @file
 * SolverEngine implementation.
 */

#include "core/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.hh"
#include "core/optimizer.hh"
#include "core/solve_cache.hh"
#include "core/solver.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace cactid {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Order-preserving streaming accumulator.  Folding in enumeration
 * order with an incremental max-area prune yields exactly the same
 * survivor set, in the same order, as filtering the fully materialized
 * space: a solution evicted against the running best area can never
 * pass the final area filter, whose threshold only shrinks.
 */
class StreamingFold {
public:
    StreamingFold(const MemoryConfig &cfg, bool collect_all,
                  EngineStats &st, SolveResult &res)
        : slack_(1.0 + cfg.maxAreaConstraint), collectAll_(collect_all),
          st_(st), res_(res)
    {
    }

    void
    operator()(Solution &&s)
    {
        ++st_.solutionsBuilt;
        if (collectAll_)
            res_.all.push_back(s);
        if (s.totalArea < bestArea_) {
            bestArea_ = s.totalArea;
            const double limit = bestArea_ * slack_;
            st_.areaPruned +=
                std::erase_if(live_, [limit](const Solution &q) {
                    return !(q.totalArea <= limit);
                });
        }
        if (s.totalArea <= bestArea_ * slack_)
            live_.push_back(std::move(s));
        else
            ++st_.areaPruned;
        st_.peakLiveSolutions =
            std::max(st_.peakLiveSolutions, live_.size());
    }

    std::vector<Solution> take() { return std::move(live_); }

private:
    const double slack_;
    const bool collectAll_;
    EngineStats &st_;
    SolveResult &res_;
    std::vector<Solution> live_;
    double bestArea_ = std::numeric_limits<double>::infinity();
};

} // namespace

int
SolverEngine::resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<Solution>
SolverEngine::runPipeline(const Technology &t, const MemoryConfig &cfg,
                          SolveResult &res) const
{
    EngineStats &st = res.stats;
    st.jobsUsed = resolveJobs(opts_.jobs);

    // --- Stage 1: setup + candidate enumeration (streamed, but the
    // Partition index is tiny and must exist before the fan-out so the
    // merge has a deterministic order to follow).
    const auto t_setup = Clock::now();
    const CandidateEvaluator eval(t, cfg);
    std::vector<Partition> candidates;
    {
        OBS_PROFILE_SCOPE("solver.enumerate");
        forEachPartition(eval.spec().sizeBits, eval.spec().outputBits,
                         eval.spec().tech, PartitionLimits{},
                         [&](const Partition &p) {
                             candidates.push_back(p);
                         });
    }
    st.partitionsEnumerated = candidates.size();
    st.setupSeconds = secondsSince(t_setup);

    // --- Stage 2+3: evaluate candidates (possibly in parallel) and
    // fold the results in enumeration order.
    const auto t_eval = Clock::now();
    StreamingFold fold(cfg, opts_.collectAll, st, res);

    const int jobs = static_cast<int>(
        std::min(static_cast<std::size_t>(st.jobsUsed),
                 std::max<std::size_t>(candidates.size(), 1)));
    if (jobs <= 1) {
        OBS_PROFILE_SCOPE("solver.evaluate");
        for (const Partition &p : candidates) {
            if (auto s = eval(p))
                fold(std::move(*s));
            else
                ++st.partitionsInfeasible;
        }
    } else {
        OBS_PROFILE_SCOPE("solver.evaluate");
        const std::size_t n = candidates.size();
        std::vector<std::optional<Solution>> slots(n);
        std::vector<char> done(n, 0);
        std::mutex mtx;
        std::condition_variable cv;
        std::atomic<std::size_t> next{0};

        auto worker = [&] {
            OBS_PROFILE_SCOPE("solver.worker");
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                std::optional<Solution> s = eval(candidates[i]);
                {
                    const std::lock_guard<std::mutex> lock(mtx);
                    slots[i] = std::move(s);
                    done[i] = 1;
                }
                cv.notify_one();
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (int w = 0; w < jobs; ++w)
            pool.emplace_back(worker);

        // The merge consumes slot i only once evaluated, in index
        // order; workers run ahead while earlier slots are folded.
        for (std::size_t i = 0; i < n; ++i) {
            std::optional<Solution> s;
            {
                std::unique_lock<std::mutex> lock(mtx);
                cv.wait(lock, [&] { return done[i] != 0; });
                s = std::move(slots[i]);
                slots[i].reset();
            }
            if (s)
                fold(std::move(*s));
            else
                ++st.partitionsInfeasible;
        }
        for (std::thread &th : pool)
            th.join();
    }
    st.evaluateSeconds = secondsSince(t_eval);

    if (st.solutionsBuilt == 0)
        throw std::runtime_error(
            "no feasible solutions for " + cfg.summary());

    // --- Stage 4a: the access-time constraint pass.  The streaming
    // fold already applied the final max-area criterion (its running
    // best converges to the true best).  The survivors returned here
    // are weight-independent: only the objective pass remains.
    const auto t_filter = Clock::now();
    OBS_PROFILE_SCOPE("solver.filter");
    std::vector<Solution> live = fold.take();
    st.timePruned = filterByAccessTime(live, cfg.maxAccTimeConstraint);
    st.filterSeconds = secondsSince(t_filter);
    return live;
}

SolveResult
SolverEngine::run(const Technology &t, const MemoryConfig &cfg,
                  EngineStats *stats) const
{
    OBS_PROFILE_SCOPE("solver.run");
    const auto t_total = Clock::now();

    SolveResult res;
    std::vector<Solution> live = runPipeline(t, cfg, res);

    // --- Stage 4b: the objective pass.
    const auto t_objective = Clock::now();
    res.best = selectBest(live, cfg.weights);
    res.filtered = std::move(live);
    res.stats.filterSeconds += secondsSince(t_objective);

    res.stats.totalSeconds = secondsSince(t_total);
    if (stats)
        *stats = res.stats;
    return res;
}

SolveResult
SolverEngine::run(const MemoryConfig &cfg, EngineStats *stats) const
{
    SolveCache *cache = opts_.cache ? opts_.cache : globalSolveCache();
    std::string key;
    ConfigFingerprint fp;
    if (cache) {
        key = canonicalKey(cfg);
        fp = keyFingerprint(key);
        SolveResult out;
        if (cache->lookup(fp, key, opts_.collectAll, out)) {
            if (stats)
                *stats = out.stats;
            return out;
        }
    }
    const Technology t(cfg.featureNm, cfg.temperatureK);
    SolveResult res = run(t, cfg, stats);
    if (cache)
        cache->insert(fp, key, res, opts_.collectAll);
    return res;
}

std::vector<SolveResult>
SolverEngine::solveBatch(const std::vector<MemoryConfig> &cfgs,
                         BatchStats *batch_stats) const
{
    OBS_PROFILE_SCOPE("solver.batch");
    BatchStats bs;
    bs.requests = cfgs.size();

    // --- Collapse 1: requests with equal canonical keys are one
    // solve.  Unique solves keep first-appearance order so the work
    // below is deterministic regardless of request order ties.
    struct Unique {
        const MemoryConfig *cfg = nullptr;
        std::string key;
        ConfigFingerprint fp;
        std::vector<std::size_t> requests; ///< indices into cfgs
        SolveResult res;
        bool solved = false;
    };
    std::vector<Unique> uniq;
    std::unordered_map<std::string, std::size_t> byKey;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        std::string key = canonicalKey(cfgs[i]);
        const auto it = byKey.find(key);
        if (it != byKey.end()) {
            uniq[it->second].requests.push_back(i);
            continue;
        }
        byKey.emplace(key, uniq.size());
        Unique u;
        u.cfg = &cfgs[i];
        u.fp = keyFingerprint(key);
        u.key = std::move(key);
        u.requests.push_back(i);
        uniq.push_back(std::move(u));
    }
    bs.uniqueSolves = uniq.size();

    // --- Collapse 2: cache, then group the misses by share key.
    // Members of a group differ only in objective weights, so stages
    // 1-3 and both constraint filters run once per group.
    SolveCache *cache = opts_.cache ? opts_.cache : globalSolveCache();
    std::vector<std::vector<std::size_t>> groups;
    std::unordered_map<std::string, std::size_t> byShareKey;
    for (std::size_t ui = 0; ui < uniq.size(); ++ui) {
        Unique &u = uniq[ui];
        if (cache && cache->lookup(u.fp, u.key, opts_.collectAll,
                                   u.res)) {
            u.solved = true;
            ++bs.cacheHits;
            continue;
        }
        std::string share = canonicalShareKey(*u.cfg);
        const auto it = byShareKey.find(share);
        if (it != byShareKey.end()) {
            groups[it->second].push_back(ui);
        } else {
            byShareKey.emplace(std::move(share), groups.size());
            groups.push_back({ui});
        }
    }
    bs.shareGroups = groups.size();

    for (const std::vector<std::size_t> &group : groups) {
        const auto t_total = Clock::now();
        const MemoryConfig &rep = *uniq[group.front()].cfg;
        const Technology t(rep.featureNm, rep.temperatureK);
        SolveResult shared;
        std::vector<Solution> live = runPipeline(t, rep, shared);
        for (std::size_t gi = 0; gi < group.size(); ++gi) {
            Unique &u = uniq[group[gi]];
            const bool last = gi + 1 == group.size();
            u.res.all = last ? std::move(shared.all) : shared.all;
            u.res.stats = shared.stats;
            // selectBest writes the member's objective into the
            // survivors, so each member ranks its own copy — exactly
            // what an independent run(cfg) would have produced.
            std::vector<Solution> member_live =
                last ? std::move(live) : live;
            const auto t_objective = Clock::now();
            u.res.best = selectBest(member_live, u.cfg->weights);
            u.res.filtered = std::move(member_live);
            u.res.stats.filterSeconds += secondsSince(t_objective);
            u.res.stats.totalSeconds = secondsSince(t_total);
            if (cache)
                cache->insert(u.fp, u.key, u.res, opts_.collectAll);
            u.solved = true;
        }
    }

    // --- Scatter back to request order.
    std::vector<SolveResult> out(cfgs.size());
    for (Unique &u : uniq) {
        for (std::size_t ri = 0; ri < u.requests.size(); ++ri) {
            const bool last = ri + 1 == u.requests.size();
            out[u.requests[ri]] =
                last ? std::move(u.res) : u.res;
        }
    }
    if (batch_stats)
        *batch_stats = bs;
    return out;
}

std::string
EngineStats::report() const
{
    std::ostringstream os;
    os.precision(4);
    os << "engine: " << jobsUsed << " job(s)\n";
    os << "partitions: " << partitionsEnumerated << " enumerated, "
       << partitionsInfeasible << " infeasible, " << solutionsBuilt
       << " solutions built\n";
    os << "pruned: " << areaPruned << " by max-area, " << timePruned
       << " by max-acctime ("
       << solutionsBuilt - areaPruned - timePruned << " kept, peak "
       << peakLiveSolutions << " live)\n";
    os << "time: setup " << setupSeconds * 1e3 << " ms, evaluate "
       << evaluateSeconds * 1e3 << " ms, filter "
       << filterSeconds * 1e3 << " ms, total " << totalSeconds * 1e3
       << " ms\n";
    return os.str();
}

void
registerEngineStats(obs::Registry &r, const EngineStats &s)
{
    r.counter("solver.partitions_enumerated") = s.partitionsEnumerated;
    r.counter("solver.partitions_infeasible") = s.partitionsInfeasible;
    r.counter("solver.solutions_built") = s.solutionsBuilt;
    r.counter("solver.area_pruned") = s.areaPruned;
    r.counter("solver.time_pruned") = s.timePruned;
    r.counter("solver.peak_live_solutions") = s.peakLiveSolutions;
    r.counter("solver.jobs_used") = std::uint64_t(s.jobsUsed);
    r.gauge("solver.setup_seconds") = s.setupSeconds;
    r.gauge("solver.evaluate_seconds") = s.evaluateSeconds;
    r.gauge("solver.filter_seconds") = s.filterSeconds;
    r.gauge("solver.total_seconds") = s.totalSeconds;
}

} // namespace cactid
