/**
 * @file
 * User-facing input specification for CACTI-D.
 */

#ifndef CACTID_CORE_CONFIG_HH
#define CACTID_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "tech/cell.hh"

namespace cactid {

/** What kind of memory structure is being modeled. */
enum class MemoryType : std::uint8_t {
    PlainRam,       ///< scratchpad / tagless memory
    Cache,          ///< tag + data arrays
    MainMemoryChip, ///< commodity DRAM part on a DIMM (section 2.1)
};

/** Cache access modes (tag/data sequencing). */
enum class AccessMode : std::uint8_t {
    Normal,     ///< tag and data in parallel, late way select
    Sequential, ///< data only after tag match (saves data-array energy)
    Fast,       ///< all ways shipped out, selected at the edge
};

/**
 * Weights of the optimization function applied after the max-area and
 * max-access-time filters (paper section 2.4).  Each metric enters the
 * objective normalized to the best value among the surviving solutions.
 */
struct OptimizationWeights {
    double dynamicEnergy = 1.0;
    double leakage = 1.0;
    double randomCycle = 1.0;
    double interleaveCycle = 1.0;
    double accessTime = 0.0;
    double area = 0.0;
};

/** Complete input specification. */
struct MemoryConfig {
    // --- What to build.
    double capacityBytes = 0.0; ///< total capacity over all banks
    int blockBytes = 64;        ///< line size / access granularity
    int associativity = 1;      ///< ways (Cache only)
    int nBanks = 1;             ///< independently addressed banks
    MemoryType type = MemoryType::PlainRam;
    AccessMode accessMode = AccessMode::Normal;
    int physicalAddressBits = 40; ///< for tag sizing
    int ports = 1;              ///< total access ports (SRAM only)

    // --- Technology.
    bool includeEcc = false;    ///< store 8 SECDED check bits per 64
    double featureNm = 32.0;
    double temperatureK = 350.0;
    RamCellTech dataCellTech = RamCellTech::Sram;
    RamCellTech tagCellTech = RamCellTech::Sram;
    bool sleepTransistors = false;

    // --- Optimization controls (section 2.4).
    double maxAreaConstraint = 0.40;    ///< within 40% of best-area
    double maxAccTimeConstraint = 0.10; ///< within 10% of best-acctime
    double repeaterDerate = 1.0;        ///< max_repeater_delay constraint
    OptimizationWeights weights;

    // --- Main-memory chip organization (section 2.1).
    int ioBits = 8;        ///< data pins (x4 / x8 / x16)
    int burstLength = 8;   ///< bits per pin per READ/WRITE command
    int prefetchWidth = 8; ///< internal prefetch per pin
    int pageBytes = 1024;  ///< DRAM page (row) size
    double ioDelay = 8e-9; ///< interface pipeline: command registration,
                           ///< column redundancy, I/O gating, DLL, serializer
    double ioEnergyPerBit = 18e-12; ///< off-chip signalling energy (SSTL
                                    ///< driver + termination)

    /** Bits delivered by one data-array access. */
    int dataOutputBits() const;

    /** Storage bits per data bank. */
    double bankBits() const;

    /** Validate and throw std::invalid_argument on nonsense input. */
    void validate() const;

    /** One-line description for reports. */
    std::string summary() const;
};

} // namespace cactid

#endif // CACTID_CORE_CONFIG_HH
